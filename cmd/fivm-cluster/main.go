// Command fivm-cluster runs the multi-node serving router: it fans v1
// API writes out to fivm-serve workers by join key and ring-merges
// their partial results on reads, so a cluster answers exactly like one
// engine over the whole stream (see internal/cluster and docs/API.md).
//
// Two ways to name the shards:
//
//	fivm-cluster -shards http://h1:8344,http://h2:8344 \
//	             -relations "R:A,B;S:B,C" -query "..."   # existing workers
//	fivm-cluster -spawn 4 -relations "R:A,B;S:B,C" ...   # dev mode: forks
//	             4 local workers on successive ports and routes to them
//
// Every worker must run the same engine configuration the router is
// given — the router validates it by opening its own data-less merger
// engine from the same flags. -shard-by picks the partitioned anchor
// relation (default: the first declared relation); all other relations
// broadcast to every shard.
//
// In -spawn mode each worker is the same daemon fivm-serve runs,
// re-executed from this binary with the hidden -worker flag. With -wal
// DIR each worker i gets its own log directory DIR/shard-i, so a killed
// worker recovers its shard's acknowledged updates on restart. The -db
// presets are rejected: their bulk load would duplicate the anchor
// relation into every shard instead of partitioning it.
//
// The router listens on -addr and serves /v1/update, /v1/model,
// /v1/predict, /v1/stats, /v1/healthz, /v1/viewtree, and /metrics with
// the same wire protocol as a single worker.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/fivm/client"
	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/daemon"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8350", "router HTTP listen address")
	shards := flag.String("shards", "", "comma-separated worker base URLs (shard i = i-th URL); mutually exclusive with -spawn")
	spawn := flag.Int("spawn", 0, "dev mode: fork N local workers and route to them")
	spawnPort := flag.Int("spawn-port", 8351, "first worker port in -spawn mode (worker i listens on 127.0.0.1:port+i)")
	shardBy := flag.String("shard-by", "", "anchor relation partitioned across shards (default: first declared relation)")
	coverWait := flag.Duration("cover-wait", 2*time.Second, "how long a merged read waits for every shard to cover acked writes")
	retryBudget := flag.Duration("retry-budget", 2*time.Second, "how long a write retries a shard's transport failures and 503s before giving up (negative disables)")
	shardTimeout := flag.Duration("shard-timeout", 10*time.Second, "per-attempt ceiling on any one shard HTTP request, so a black-holed worker fails the attempt instead of hanging it (0 = none)")
	db := flag.String("db", "", "rejected: presets bulk-load per worker and would duplicate the anchor relation")
	engine := flag.String("engine", "", "engine kind: analysis|count|float|covar|rangedcovar|join (default: inferred from the other flags)")
	query := flag.String("query", "", `SQL-subset query for count/float engines`)
	relations := flag.String("relations", "", `relations, e.g. "R:A,B;S:B,C"`)
	features := flag.String("features", "", `analysis features, e.g. "A,B:cat,C:bin=10"`)
	attrs := flag.String("attrs", "", `covar aggregate attributes, e.g. "A,B,C"`)
	label := flag.String("label", "", "ridge label attribute for analysis engines")
	workers := flag.Int("workers", 0, "per-worker parallel delta-propagation workers (forwarded in -spawn mode)")
	walDir := flag.String("wal", "", "-spawn mode: durability root; worker i logs under DIR/shard-i")
	fsyncPolicy := flag.String("fsync", string(wal.PolicyInterval), "-spawn mode: worker WAL fsync policy: always|interval|off")
	highWatermark := flag.Int("high-watermark", 0, "-spawn mode: worker ingest shed watermark (0 = channel capacity)")
	dedupCap := flag.Int("dedup-cap", 0, "-spawn mode: worker idempotency dedup table capacity (0 = 8192)")
	checkpointEvery := flag.Duration("checkpoint-interval", time.Minute, "-spawn mode: worker checkpoint period")
	version := flag.Bool("version", false, "print build information and exit")
	worker := flag.Bool("worker", false, "internal: run one spawned worker daemon (set by -spawn re-exec)")
	workerAddr := flag.String("worker-addr", "", "internal: the spawned worker's listen address")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version())
		return
	}
	if *db != "" {
		fatalUsage("fivm-cluster does not support -db presets: the preset bulk load would be duplicated into every shard instead of partitioned; declare the schema with -relations and stream the data through the router")
	}

	o := daemon.Options{
		Addr:               *workerAddr,
		Engine:             *engine,
		Query:              *query,
		Relations:          *relations,
		Features:           *features,
		Attrs:              *attrs,
		Label:              *label,
		Workers:            *workers,
		WALDir:             *walDir,
		FsyncPolicy:        *fsyncPolicy,
		FsyncInterval:      100 * time.Millisecond,
		CheckpointInterval: *checkpointEvery,
		SegmentBytes:       64 << 20,
		HighWatermark:      *highWatermark,
		DedupCap:           *dedupCap,
	}

	if *worker {
		o.Logf = log.New(os.Stderr, fmt.Sprintf("worker %s ", o.Addr), log.LstdFlags).Printf
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := daemon.Run(ctx, o); err != nil {
			log.Fatal(err)
		}
		return
	}

	if (*shards == "") == (*spawn <= 0) {
		fatalUsage("exactly one of -shards or -spawn is required")
	}
	// Validate the shared engine configuration up front, with the same
	// error text the workers themselves would print.
	probe := o
	probe.Addr = ":0"
	probe.WALDir = "" // the router itself never opens a WAL
	if err := probe.Validate(); err != nil {
		fatalUsage(err.Error())
	}
	cfg, _, err := o.EngineConfig()
	if err != nil {
		fatalUsage(err.Error())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var urls []string
	var children []*exec.Cmd
	if *spawn > 0 {
		urls, children, err = spawnWorkers(*spawn, *spawnPort, *walDir)
		if err != nil {
			log.Fatal(err)
		}
		defer reapWorkers(children)
		if err := waitHealthy(ctx, urls, 30*time.Second); err != nil {
			log.Fatal(err)
		}
	} else {
		for _, u := range strings.Split(*shards, ",") {
			if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
				urls = append(urls, u)
			}
		}
	}

	clusterCfg := cluster.Config{
		ShardURLs:   urls,
		Engine:      cfg,
		ShardBy:     *shardBy,
		CoverWait:   *coverWait,
		RetryBudget: *retryBudget,
	}
	if *shardTimeout > 0 {
		clusterCfg.HTTPClient = &http.Client{Timeout: *shardTimeout}
	}
	rt, err := cluster.New(clusterCfg)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	go func() {
		log.Printf("fivm-cluster routing %d shards on %s (engine=%s, shard-by=%s)",
			len(urls), *addr, rt.Kind(), rt.Map().Anchor())
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	<-ctx.Done()
	log.Print("shutting down...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
}

func fatalUsage(msg string) {
	fmt.Fprintf(os.Stderr, "fivm-cluster: %s\n", msg)
	os.Exit(2)
}

// spawnWorkers re-executes this binary once per shard with the hidden
// -worker flag, forwarding the engine flags verbatim so every worker
// runs the router's exact configuration.
func spawnWorkers(n, portBase int, walDir string) (urls []string, children []*exec.Cmd, err error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	// Forward every engine/pipeline flag that was explicitly set.
	var common []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "engine", "query", "relations", "features", "attrs", "label",
			"workers", "fsync", "high-watermark", "dedup-cap", "checkpoint-interval":
			common = append(common, "-"+f.Name, f.Value.String())
		}
	})
	for i := 0; i < n; i++ {
		a := fmt.Sprintf("127.0.0.1:%d", portBase+i)
		args := append([]string{"-worker", "-worker-addr", a}, common...)
		if walDir != "" {
			args = append(args, "-wal", filepath.Join(walDir, "shard-"+strconv.Itoa(i)))
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Start(); err != nil {
			reapWorkers(children)
			return nil, nil, fmt.Errorf("spawning worker %d: %w", i, err)
		}
		children = append(children, cmd)
		urls = append(urls, "http://"+a)
		log.Printf("spawned worker %d (pid %d) on %s", i, cmd.Process.Pid, a)
	}
	return urls, children, nil
}

// reapWorkers asks every child to shut down gracefully and waits.
func reapWorkers(children []*exec.Cmd) {
	for _, c := range children {
		if c.Process != nil {
			_ = c.Process.Signal(syscall.SIGTERM)
		}
	}
	for _, c := range children {
		_ = c.Wait()
	}
}

// waitHealthy polls every worker's /v1/healthz until it answers or the
// timeout expires.
func waitHealthy(ctx context.Context, urls []string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, u := range urls {
		cli := client.New(u, client.WithRetries(0))
		for {
			hctx, cancel := context.WithTimeout(ctx, time.Second)
			h, err := cli.Healthz(hctx)
			cancel()
			if err == nil && h.OK {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("worker %s not healthy after %v (last: %v)", u, timeout, err)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
	return nil
}

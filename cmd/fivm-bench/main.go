// Command fivm-bench regenerates every evaluation artifact of the paper
// (DESIGN.md §3): Figure 1's worked example (e1), the §1 throughput
// claims (e2), the application tabs (e3–e6), the batch/aggregate sweeps
// (e7), and the ablations (a1, a3). It also runs the machine-readable
// performance suite (perf) and compares two result files, which is how
// CI gates performance regressions (docs/PERF.md).
//
// Usage:
//
//	fivm-bench -exp e2 -scale demo
//	fivm-bench -exp all -scale small
//	fivm-bench -exp perf -json BENCH_dev.json [-bench regex] [-benchtime 100ms]
//	fivm-bench compare [-max-rate-drop 0.15] [-max-alloc-growth 0.10] BENCH_baseline.json BENCH_dev.json
//	fivm-bench scalingcheck [-max-growth 3] BENCH_dev.json
//	fivm-bench parallelcheck [-min-speedup 2] [-json PARALLEL_dev.json] BENCH_dev.json
//	fivm-bench clustercheck [-min-speedup 1.5] [-json CLUSTERCHECK_dev.json] BENCH_dev.json
//	fivm-bench loadgen -url http://localhost:8344 -duration 10s -concurrency 8 -write-ratio 0.5 [-json LOADGEN.json]
//	fivm-bench chaos -target 127.0.0.1:8351 [-listen 127.0.0.1:9351] [-seed 1] [-weights none=90,reset=5,blackhole=5] [-partition-every 5s] [-json CHAOS.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/perf"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "scalingcheck" {
		os.Exit(runScalingCheck(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "parallelcheck" {
		os.Exit(runParallelCheck(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "clustercheck" {
		os.Exit(runClusterCheck(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		os.Exit(runLoadgen(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		os.Exit(runChaos(os.Args[2:]))
	}

	exp := flag.String("exp", "all", "experiment id: e1|e2|e3|e4|e5|e6|e7|e8|a1|a2|a3|a4|all, or perf")
	scale := flag.String("scale", "small", "workload scale: small|demo")
	jsonOut := flag.String("json", "", "perf: write machine-readable results to this file (e.g. BENCH_dev.json)")
	benchFilter := flag.String("bench", "", "perf: only run suite benchmarks matching this regexp")
	benchTime := flag.String("benchtime", "", "perf: per-benchmark measurement target (go test -benchtime syntax, e.g. 100ms or 10x)")
	flag.Parse()

	if *exp == "perf" {
		os.Exit(runPerf(*jsonOut, *benchFilter, *benchTime))
	}

	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.SmallScale()
	case "demo":
		sc = experiments.DemoScale()
	default:
		log.Fatalf("unknown scale %q (small|demo)", *scale)
	}

	run := map[string]func(experiments.Scale) error{
		"e1": runE1, "e2": runE2, "e3": runE3, "e4": runE4,
		"e5": runE5, "e6": runE6, "e7": runE7, "e8": runE8,
		"a1": runA1, "a2": runA2, "a3": runA3, "a4": runA4,
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "a1", "a2", "a3", "a4"}
	}
	for _, id := range ids {
		fn, ok := run[id]
		if !ok {
			log.Fatalf("unknown experiment %q", id)
		}
		fmt.Printf("================ %s ================\n", strings.ToUpper(id))
		if err := fn(sc); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Println()
	}
}

// runPerf executes the canonical benchmark suite (internal/perf) and
// prints one line per benchmark; with -json it also writes the
// machine-readable report that `fivm-bench compare` consumes.
func runPerf(jsonOut, benchFilter, benchTime string) int {
	var filter *regexp.Regexp
	if benchFilter != "" {
		var err error
		if filter, err = regexp.Compile(benchFilter); err != nil {
			fmt.Fprintf(os.Stderr, "fivm-bench: bad -bench regexp: %v\n", err)
			return 2
		}
	}
	rep, err := perf.Run(perf.Suite(), perf.Options{
		Filter:    filter,
		BenchTime: benchTime,
		Commit:    gitCommit(),
		Progress:  os.Stdout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fivm-bench: %v\n", err)
		return 1
	}
	if jsonOut != "" {
		if err := rep.WriteJSON(jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "fivm-bench: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %d results to %s\n", len(rep.Results), jsonOut)
	}
	return 0
}

// runCompare diffs two perf reports and exits non-zero when the current
// one regresses beyond the thresholds — the CI gate.
func runCompare(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	th := perf.DefaultThresholds()
	fs.Float64Var(&th.MaxRateDrop, "max-rate-drop", th.MaxRateDrop, "tolerated relative drop in updates/sec (ns/op growth where no rate metric exists)")
	fs.Float64Var(&th.MaxAllocGrowth, "max-alloc-growth", th.MaxAllocGrowth, "tolerated relative growth in allocs/op")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: fivm-bench compare [flags] baseline.json current.json")
		return 2
	}
	baseline, err := perf.ReadJSON(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fivm-bench: %v\n", err)
		return 2
	}
	current, err := perf.ReadJSON(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fivm-bench: %v\n", err)
		return 2
	}
	findings, ok := perf.Compare(baseline, current, th)
	perf.WriteFindings(os.Stdout, findings, ok)
	if !ok {
		return 1
	}
	return 0
}

// runScalingCheck gates the O(|delta|) latency claim within a single
// report: the UpdateLatencyScaling 100k-row ns/op must stay within a
// bounded factor of the 1k-row ns/op. Being a single-run property it is
// hardware-independent, so CI enforces it on every run regardless of
// what machine the committed baseline came from (docs/PERF.md).
func runScalingCheck(args []string) int {
	fs := flag.NewFlagSet("scalingcheck", flag.ExitOnError)
	maxGrowth := fs.Float64("max-growth", perf.DefaultMaxScalingGrowth, "tolerated 1k->100k ns/op growth factor")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fivm-bench scalingcheck [flags] report.json")
		return 2
	}
	rep, err := perf.ReadJSON(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fivm-bench: %v\n", err)
		return 2
	}
	findings, ok := perf.CheckScaling(rep, *maxGrowth)
	perf.WriteFindings(os.Stdout, findings, ok)
	if !ok {
		return 1
	}
	return 0
}

// runParallelCheck gates the multi-worker speedup claim within a single
// report (perf.CheckParallel): the 4-worker E2FIVM run must sustain at
// least min-speedup times the 1-worker throughput of the same suite
// invocation. Hardware-independent because both runs share the host; on
// hosts with fewer than 4 CPUs the check reports a skip note and
// passes. -json writes the findings machine-readably for CI artifacts.
func runParallelCheck(args []string) int {
	fs := flag.NewFlagSet("parallelcheck", flag.ExitOnError)
	minSpeedup := fs.Float64("min-speedup", perf.DefaultMinParallelSpeedup, "required 4-worker / 1-worker throughput ratio")
	jsonOut := fs.String("json", "", "write findings as JSON to this file")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fivm-bench parallelcheck [flags] report.json")
		return 2
	}
	rep, err := perf.ReadJSON(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fivm-bench: %v\n", err)
		return 2
	}
	findings, ok := perf.CheckParallel(rep, *minSpeedup)
	perf.WriteFindings(os.Stdout, findings, ok)
	if *jsonOut != "" {
		out := struct {
			GOMAXPROCS int            `json:"gomaxprocs"`
			MinSpeedup float64        `json:"min_speedup"`
			OK         bool           `json:"ok"`
			Findings   []perf.Finding `json:"findings"`
		}{rep.GOMAXPROCS, *minSpeedup, ok, findings}
		data, err := json.MarshalIndent(out, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fivm-bench: writing %s: %v\n", *jsonOut, err)
			return 2
		}
	}
	if !ok {
		return 1
	}
	return 0
}

// runClusterCheck gates the sharded-serving speedup claim within a
// single report (perf.CheckCluster): the 4-shard ClusterIngest run must
// sustain at least min-speedup times the 1-shard throughput of the same
// suite invocation. Like parallelcheck it is hardware-independent and
// reports a skip note (and passes) on hosts with fewer than 4 CPUs.
func runClusterCheck(args []string) int {
	fs := flag.NewFlagSet("clustercheck", flag.ExitOnError)
	minSpeedup := fs.Float64("min-speedup", perf.DefaultMinClusterSpeedup, "required 4-shard / 1-shard throughput ratio")
	jsonOut := fs.String("json", "", "write findings as JSON to this file")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fivm-bench clustercheck [flags] report.json")
		return 2
	}
	rep, err := perf.ReadJSON(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fivm-bench: %v\n", err)
		return 2
	}
	findings, ok := perf.CheckCluster(rep, *minSpeedup)
	perf.WriteFindings(os.Stdout, findings, ok)
	if *jsonOut != "" {
		out := struct {
			GOMAXPROCS int            `json:"gomaxprocs"`
			MinSpeedup float64        `json:"min_speedup"`
			OK         bool           `json:"ok"`
			Findings   []perf.Finding `json:"findings"`
		}{rep.GOMAXPROCS, *minSpeedup, ok, findings}
		data, err := json.MarshalIndent(out, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fivm-bench: writing %s: %v\n", *jsonOut, err)
			return 2
		}
	}
	if !ok {
		return 1
	}
	return 0
}

// runLoadgen drives mixed read/write HTTP traffic against a live
// fivm-serve instance and reports throughput plus client-side latency
// quantiles (internal/perf.RunLoadgen). The report always goes to
// stdout; -json additionally writes it to a file, which is how the CI
// serving smoke archives it next to BENCH_ci.json.
func runLoadgen(args []string) int {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	url := fs.String("url", "http://localhost:8344", "base URL of the fivm-serve instance")
	duration := fs.Duration("duration", 10*time.Second, "how long to generate load")
	concurrency := fs.Int("concurrency", 8, "number of client goroutines")
	writeRatio := fs.Float64("write-ratio", 0.5, "fraction of requests that are POST /update (rest are GET /model)")
	batch := fs.Int("batch", 8, "tuples per write request")
	seed := fs.Int64("seed", 1, "RNG seed for the generated tuple stream")
	retries := fs.Int("retries", 0, "client retries per request (0 = a fault counts as an error; >0 = chaos mode, batch-ID dedup absorbs redeliveries)")
	jsonOut := fs.String("json", "", "also write the JSON report to this file")
	fs.Parse(args)

	rep, err := perf.RunLoadgen(perf.LoadgenConfig{
		URL:         *url,
		Duration:    *duration,
		Concurrency: *concurrency,
		WriteRatio:  *writeRatio,
		BatchSize:   *batch,
		Seed:        *seed,
		Retries:     *retries,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fivm-bench: %v\n", err)
		return 1
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fivm-bench: %v\n", err)
		return 1
	}
	fmt.Println(string(out))
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "fivm-bench: %v\n", err)
			return 1
		}
	}
	return 0
}

// gitCommit best-effort stamps reports with the working tree's commit.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// runE1 replays Figure 1 by delegating to the quickstart example, which
// prints the toy database's payloads under all four rings.
func runE1(experiments.Scale) error {
	fmt.Println("Figure 1 worked example (see also examples/quickstart and")
	fmt.Println("go test ./internal/view -run TestFigure1):")
	cmd := exec.Command("go", "run", "./examples/quickstart")
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		// Fall back to a pointer when the source tree is unavailable
		// (e.g. installed binary).
		fmt.Println("  (run examples/quickstart from the repository root for the full output)")
	}
	return nil
}

func runE2(sc experiments.Scale) error {
	fmt.Println("E2 — §1 claim: F-IVM vs DBToaster-style IVM vs re-evaluation")
	fmt.Printf("Retailer 5-way join, %d fact rows, %d updates (20%% deletes), batch %d, one goroutine\n\n",
		sc.InventoryRows, sc.StreamLen, sc.BatchSize)
	rows, err := experiments.E2(sc, 0.2)
	if err != nil {
		return err
	}
	experiments.PrintThroughput(os.Stdout, rows)
	fmt.Println()
	r, nAggs, err := experiments.E2Compound(sc, 0.2)
	if err != nil {
		return err
	}
	fmt.Printf("compound mixed-feature payload (%d one-hot scalar aggregates):\n", nAggs)
	experiments.PrintThroughput(os.Stdout, []experiments.Throughput{r})
	return nil
}

func runE3(sc experiments.Scale) error {
	fmt.Println("E3 — Figure 2a: model selection under update bulks (threshold 0.2)")
	rows, err := experiments.E3ModelSelection(sc, 0.2)
	if err != nil {
		return err
	}
	experiments.PrintAppResults(os.Stdout, rows)
	return nil
}

func runE4(sc experiments.Scale) error {
	fmt.Println("E4 — Figure 2b: ridge regression re-convergence per bulk")
	rows, err := experiments.E4Regression(sc)
	if err != nil {
		return err
	}
	experiments.PrintAppResults(os.Stdout, rows)
	return nil
}

func runE5(sc experiments.Scale) error {
	fmt.Println("E5 — Figure 2c: MI matrix + Chow-Liu tree per bulk (root ksn)")
	rows, err := experiments.E5ChowLiu(sc)
	if err != nil {
		return err
	}
	experiments.PrintAppResults(os.Stdout, rows)
	return nil
}

func runE6(sc experiments.Scale) error {
	fmt.Println("E6 — Figure 2d: view tree and M3 code for the Retailer query")
	m3, err := experiments.E6Maintenance(sc)
	if err != nil {
		return err
	}
	fmt.Println(m3)
	return nil
}

func runE7(sc experiments.Scale) error {
	fmt.Println("E7a — batch-size sweep (COVAR m=5, 20% deletes)")
	rows, err := experiments.E7BatchSize(sc, []int{1, 10, 100, 1000, 10000})
	if err != nil {
		return err
	}
	for _, r := range rows {
		experiments.PrintThroughput(os.Stdout, []experiments.Throughput{r.Throughput})
	}
	fmt.Println("\nE7b — aggregate-count sweep (degree m of the COVAR ring)")
	rows, err = experiments.E7AggCount(sc, []int{2, 5, 10, 15, 19})
	if err != nil {
		return err
	}
	for _, r := range rows {
		experiments.PrintThroughput(os.Stdout, []experiments.Throughput{r.Throughput})
	}
	return nil
}

func runE8(sc experiments.Scale) error {
	fmt.Println("E8 — the second demo database: Favorita (6-way join)")
	rows, apps, err := experiments.E8Favorita(sc)
	if err != nil {
		return err
	}
	experiments.PrintThroughput(os.Stdout, rows)
	fmt.Println()
	experiments.PrintAppResults(os.Stdout, apps)
	return nil
}

func runA1(sc experiments.Scale) error {
	fmt.Println("A1 — ablation: ring sharing (compound payload vs independent aggregate trees)")
	rows, err := experiments.A1Sharing(sc, 5)
	if err != nil {
		return err
	}
	experiments.PrintThroughput(os.Stdout, rows)
	return nil
}

func runA2(sc experiments.Scale) error {
	fmt.Println("A2 — ablation: maintaining gradients vs maintaining the join itself")
	rows, err := experiments.A2Factorization(sc)
	if err != nil {
		return err
	}
	experiments.PrintThroughput(os.Stdout, rows)
	return nil
}

func runA4(sc experiments.Scale) error {
	fmt.Println("A4 — ablation: full-degree vs ranged view payloads (Figure 2d's RingCofactor<d,idx,cnt>)")
	rows, err := experiments.A4RangedPayloads(sc, 20)
	if err != nil {
		return err
	}
	experiments.PrintThroughput(os.Stdout, rows)
	return nil
}

func runA3(sc experiments.Scale) error {
	fmt.Println("A3 — ablation: delete-ratio sweep (deletes cost the same as inserts)")
	rows, err := experiments.A3Deletes(sc, []float64{0, 0.25, 0.5})
	if err != nil {
		return err
	}
	for _, r := range rows {
		experiments.PrintThroughput(os.Stdout, []experiments.Throughput{r.Throughput})
	}
	return nil
}

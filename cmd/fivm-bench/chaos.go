package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultnet"
)

// runChaos runs one faultnet proxy in front of one backend: shell
// scripts (the CI chaos job) put a worker or router behind it and
// drive traffic through the proxy's address. The fault schedule is
// seeded, so a failing run reproduces with the same -seed.
func runChaos(args []string) int {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	target := fs.String("target", "", "backend to proxy, host:port or http://host:port (required)")
	listen := fs.String("listen", "127.0.0.1:0", "proxy listen address")
	seed := fs.Int64("seed", 1, "fault-schedule seed (same seed = same fault sequence)")
	duration := fs.Duration("duration", 0, "how long to run (0 = until SIGINT/SIGTERM)")
	weights := fs.String("weights", "none=90,latency=4,reset=2,blackhole=1,truncate=3",
		"per-connection fault-kind weights as kind=w pairs")
	maxLatency := fs.Duration("max-latency", 50*time.Millisecond, "upper bound of injected latency")
	maxAfter := fs.Int("max-after", 256, "max bytes forwarded before a reset/truncate cut")
	partitionEvery := fs.Duration("partition-every", 0, "cycle a full partition with this period (0 disables)")
	partitionFor := fs.Duration("partition-for", time.Second, "partition length within each -partition-every cycle")
	jsonOut := fs.String("json", "", "also write the final proxy stats JSON to this file")
	fs.Parse(args)

	if *target == "" {
		fmt.Fprintln(os.Stderr, "fivm-bench chaos: -target is required")
		return 2
	}
	addr := strings.TrimPrefix(strings.TrimPrefix(*target, "http://"), "https://")
	addr = strings.TrimSuffix(addr, "/")

	w, err := parseWeights(*weights)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fivm-bench chaos: %v\n", err)
		return 2
	}
	w.MaxLatency = *maxLatency
	w.MaxAfter = *maxAfter

	p, err := faultnet.Listen(*listen, addr, faultnet.NewRandSchedule(*seed, w))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fivm-bench chaos: %v\n", err)
		return 1
	}
	defer p.Close()
	// The listen address goes to stdout first thing, so scripts with
	// -listen :0 can capture the port.
	fmt.Printf("chaos proxy %s -> %s (seed %d, weights %s)\n", p.Addr(), addr, *seed, *weights)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var timeUp <-chan time.Time
	if *duration > 0 {
		timeUp = time.After(*duration)
	}
	var nextPartition <-chan time.Time
	if *partitionEvery > 0 {
		nextPartition = time.After(*partitionEvery)
	}
loop:
	for {
		select {
		case <-stop:
			break loop
		case <-timeUp:
			break loop
		case <-nextPartition:
			p.Partition(true)
			fmt.Printf("chaos: partition on for %v\n", *partitionFor)
			select {
			case <-time.After(*partitionFor):
			case <-stop:
				p.Partition(false)
				break loop
			}
			p.Partition(false)
			fmt.Println("chaos: partition healed")
			nextPartition = time.After(*partitionEvery)
		}
	}

	out, err := json.MarshalIndent(p.Stats(), "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fivm-bench chaos: %v\n", err)
		return 1
	}
	fmt.Println(string(out))
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "fivm-bench chaos: %v\n", err)
			return 1
		}
	}
	return 0
}

// parseWeights decodes "none=90,reset=5,..." into faultnet.Weights.
func parseWeights(s string) (faultnet.Weights, error) {
	var w faultnet.Weights
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		kind, val, ok := strings.Cut(pair, "=")
		if !ok {
			return w, fmt.Errorf("bad weight %q (want kind=w)", pair)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n < 0 {
			return w, fmt.Errorf("bad weight %q: want a non-negative integer", pair)
		}
		switch strings.TrimSpace(kind) {
		case "none":
			w.None = n
		case "latency":
			w.Latency = n
		case "reset":
			w.Reset = n
		case "blackhole":
			w.Blackhole = n
		case "truncate":
			w.Truncate = n
		default:
			return w, fmt.Errorf("unknown fault kind %q (want none|latency|reset|blackhole|truncate)", kind)
		}
	}
	if w.None+w.Latency+w.Reset+w.Blackhole+w.Truncate == 0 {
		return w, fmt.Errorf("weights %q sum to zero", s)
	}
	return w, nil
}

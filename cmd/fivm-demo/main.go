// Command fivm-demo is a terminal reproduction of the paper's web user
// interface (Figure 2). It loads a synthetic database (Retailer or
// Favorita), maintains the MI and COVAR matrices under bulks of
// updates, and renders each tab after every bulk:
//
//	Input               — database, query, feature kinds
//	Model Selection     — MI ranking against a label with a threshold
//	Regression          — ridge model re-converged from the COVAR matrix
//	Chow-Liu Tree       — MI matrix and the tree rooted at a chosen node
//	Maintenance Strategy— the view tree and its M3 code
//
// Usage:
//
//	fivm-demo -db retailer -label inventoryunits -threshold 0.2 -bulks 3
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/fivm"
	"repro/internal/dataset"
	"repro/internal/ml"
)

func main() {
	dbName := flag.String("db", "retailer", "database: retailer|favorita")
	label := flag.String("label", "", "label attribute (default: the fact measure)")
	threshold := flag.Float64("threshold", 0.2, "MI threshold for model selection")
	bulks := flag.Int("bulks", 3, "number of update bulks to process")
	bulkSize := flag.Int("bulk-size", 10_000, "updates per bulk")
	root := flag.String("root", "", "Chow-Liu root attribute (default: the fact key)")
	csvIn := flag.String("csv-dir", "", "load the database from typed-header CSVs in this directory instead of generating it")
	csvOut := flag.String("dump-csv", "", "write the (generated) database as typed-header CSVs to this directory and exit")
	flag.Parse()

	var (
		db          *dataset.Database
		miFeatures  []fivm.FeatureSpec // all categorical/binned, for MI
		covFeatures []fivm.FeatureSpec // continuous label + mixed, for COVAR
		factRel     string
	)
	switch *dbName {
	case "retailer":
		db = dataset.Retailer(dataset.DefaultRetailerConfig())
		factRel = "Inventory"
		if *label == "" {
			*label = "inventoryunits"
		}
		if *root == "" {
			*root = "ksn"
		}
		miFeatures = []fivm.FeatureSpec{
			{Attr: "inventoryunits", BinWidth: 50},
			{Attr: "ksn", Categorical: true},
			{Attr: "prize", BinWidth: 10},
			{Attr: "subcategory", Categorical: true},
			{Attr: "category", Categorical: true},
			{Attr: "categoryCluster", Categorical: true},
			{Attr: "zip", Categorical: true},
			{Attr: "avghhi", BinWidth: 20_000},
			{Attr: "population", BinWidth: 25_000},
			{Attr: "maxtemp", BinWidth: 5},
			{Attr: "rain", Categorical: true},
			{Attr: "snow", Categorical: true},
		}
		covFeatures = []fivm.FeatureSpec{
			{Attr: "inventoryunits"},
			{Attr: "prize"},
			{Attr: "subcategory", Categorical: true},
			{Attr: "category", Categorical: true},
			{Attr: "categoryCluster", Categorical: true},
			{Attr: "avghhi"},
			{Attr: "maxtemp"},
		}
	case "favorita":
		db = dataset.Favorita(dataset.DefaultFavoritaConfig())
		factRel = "Sales"
		if *label == "" {
			*label = "unit_sales"
		}
		if *root == "" {
			*root = "item"
		}
		miFeatures = []fivm.FeatureSpec{
			{Attr: "unit_sales", BinWidth: 10},
			{Attr: "item", Categorical: true},
			{Attr: "family", Categorical: true},
			{Attr: "class", Categorical: true},
			{Attr: "perishable", Categorical: true},
			{Attr: "store", Categorical: true},
			{Attr: "city", Categorical: true},
			{Attr: "cluster", Categorical: true},
			{Attr: "onpromotion", Categorical: true},
			{Attr: "oilprice", BinWidth: 5},
			{Attr: "holiday_type", Categorical: true},
			{Attr: "transactions", BinWidth: 500},
		}
		covFeatures = []fivm.FeatureSpec{
			{Attr: "unit_sales"},
			{Attr: "family", Categorical: true},
			{Attr: "perishable", Categorical: true},
			{Attr: "stype", Categorical: true},
			{Attr: "cluster", Categorical: true},
			{Attr: "oilprice"},
			{Attr: "transactions"},
		}
	default:
		log.Fatalf("unknown database %q (retailer|favorita)", *dbName)
	}

	if *csvOut != "" {
		if err := dataset.WriteCSV(db, *csvOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d relations to %s\n", len(db.Relations), *csvOut)
		return
	}
	if *csvIn != "" {
		names := make([]string, len(db.Relations))
		for i, r := range db.Relations {
			names[i] = r.Name
		}
		loaded, err := dataset.ReadCSV(*csvIn, names)
		if err != nil {
			log.Fatal(err)
		}
		loaded.Name = db.Name
		loaded.Categorical = db.Categorical
		db = loaded
	}

	var rels []fivm.RelationSpec
	var relNames []string
	for _, r := range db.Relations {
		rels = append(rels, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
		relNames = append(relNames, r.Name)
	}

	// === Input tab ===
	banner("Input")
	fmt.Printf("database: %s\nquery: SELECT <compound aggregate> FROM %s\n",
		db.Name, strings.Join(relNames, " NATURAL JOIN "))
	fmt.Printf("MI features (%d):\n", len(miFeatures))
	for _, f := range miFeatures {
		kind := "continuous"
		if f.Categorical {
			kind = "categorical"
		} else if f.BinWidth > 0 {
			kind = fmt.Sprintf("binned(width=%v)", f.BinWidth)
		}
		fmt.Printf("  %-18s %s\n", f.Attr, kind)
	}

	an, err := fivm.NewAnalysis(fivm.AnalysisConfig{Relations: rels, Features: miFeatures})
	if err != nil {
		log.Fatal(err)
	}
	anCov, err := fivm.NewAnalysis(fivm.AnalysisConfig{Relations: rels, Features: covFeatures})
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	if err := an.Init(db.TupleMap()); err != nil {
		log.Fatal(err)
	}
	if err := anCov.Init(db.TupleMap()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninitial evaluation (MI + COVAR): %v\n", time.Since(t0).Round(time.Millisecond))

	// === Maintenance Strategy tab (static for the session) ===
	banner("Maintenance Strategy")
	fmt.Println(an.M3())

	var model *ml.RidgeModel
	cfg := ml.DefaultRidgeConfig()
	showTabs := func() {
		// === Model Selection tab ===
		banner("Model Selection")
		ranking, selected, err := an.SelectFeatures(*label, *threshold)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("label: %s, threshold: %.2f\n", *label, *threshold)
		for _, r := range ranking {
			mark := " "
			if r.MI >= *threshold {
				mark = "*"
			}
			fmt.Printf("  %s %-18s %.4f\n", mark, r.Attr, r.MI)
		}
		fmt.Printf("selected: %v\n", selected)

		// === Regression tab === (driven by the separate COVAR engine,
		// whose label stays continuous).
		banner("Regression")
		var sigma *ml.SigmaMatrix
		model, sigma, err = anCov.Ridge(*label, model, cfg)
		if err != nil {
			fmt.Printf("regression unavailable: %v\n", err)
		} else {
			fmt.Printf("ridge over %d one-hot columns, %d BGD iterations, train RMSE %.3f\n",
				sigma.Dim(), model.Iterations, model.TrainRMSE(sigma))
			fmt.Printf("θ0 = %+.4f\n", model.Intercept)
		}

		// === Chow-Liu Tree tab ===
		banner("Chow-Liu Tree")
		tree, err := an.ChowLiu(*root)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("root: %s, total MI: %.3f\n%s", *root, tree.TotalMI, tree)
	}
	showTabs()

	stream, err := dataset.NewStream(db, dataset.StreamConfig{
		Relation: factRel, Total: *bulks * *bulkSize, DeleteRatio: 0.25, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, bulk := range stream.Bulks(*bulkSize) {
		t0 := time.Now()
		if err := an.Apply(bulk); err != nil {
			log.Fatal(err)
		}
		if err := anCov.Apply(bulk); err != nil {
			log.Fatal(err)
		}
		banner(fmt.Sprintf("Process Updates — bulk %d (%d updates, both matrices maintained in %v)",
			i+1, len(bulk), time.Since(t0).Round(time.Millisecond)))
		showTabs()
	}
}

func banner(title string) {
	fmt.Printf("\n——— %s ———\n", title)
}

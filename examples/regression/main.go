// Command regression reproduces the demo's Regression tab (Figure 2b):
// it maintains the generalized COVAR matrix over the synthetic Retailer
// 5-way join with mixed continuous/categorical features, and after every
// bulk of updates re-converges a ridge linear regression predicting
// inventoryunits by warm-started batch gradient descent — without ever
// materializing the training dataset.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/fivm"
	"repro/internal/dataset"
	"repro/internal/ml"
)

func main() {
	db := dataset.Retailer(dataset.DefaultRetailerConfig())

	var rels []fivm.RelationSpec
	for _, r := range db.Relations {
		rels = append(rels, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
	}
	// The demo's feature set: label inventoryunits plus the item
	// attributes from Figure 2(b).
	features := []fivm.FeatureSpec{
		{Attr: "inventoryunits"}, // label (continuous)
		{Attr: "prize"},
		{Attr: "subcategory", Categorical: true},
		{Attr: "category", Categorical: true},
		{Attr: "categoryCluster", Categorical: true},
		{Attr: "avghhi"},
	}
	eng, err := fivm.Open(fivm.Config{Relations: rels, Features: features, Label: "inventoryunits"})
	if err != nil {
		log.Fatal(err)
	}
	an := eng.(*fivm.Analysis)
	start := time.Now()
	if err := an.Init(db.TupleMap()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial COVAR over the 5-way join computed in %v\n", time.Since(start).Round(time.Millisecond))

	cfg := ml.DefaultRidgeConfig()
	model, sigma, err := an.Ridge("inventoryunits", nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-hot expanded feature space: %d columns over %d training tuples\n", sigma.Dim(), int(sigma.Count))
	fmt.Printf("initial fit: %d BGD iterations, RMSE %.3f\n\n", model.Iterations, model.TrainRMSE(sigma))

	stream, err := dataset.NewStream(db, dataset.StreamConfig{
		Relation: "Inventory", Total: 30_000, DeleteRatio: 0.2, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bulk   updates   maintain    refit(iters)   RMSE    θ0")
	for i, bulk := range stream.Bulks(10_000) {
		t0 := time.Now()
		if err := an.Apply(bulk); err != nil {
			log.Fatal(err)
		}
		maintain := time.Since(t0)
		model, sigma, err = an.Ridge("inventoryunits", model, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d   %7d   %9v   %12d   %.3f   %+.3f\n",
			i+1, len(bulk), maintain.Round(time.Millisecond), model.Iterations,
			model.TrainRMSE(sigma), model.Intercept)
	}

	fmt.Println("\ntop weights by |θ|:")
	type wcol struct {
		label string
		w     float64
	}
	var ws []wcol
	for i, c := range sigma.Cols {
		if i == model.LabelCol {
			continue
		}
		ws = append(ws, wcol{c.Label(), model.Weights[i]})
	}
	for k := 0; k < 5 && k < len(ws); k++ {
		best := k
		for j := k + 1; j < len(ws); j++ {
			if abs(ws[j].w) > abs(ws[best].w) {
				best = j
			}
		}
		ws[k], ws[best] = ws[best], ws[k]
		fmt.Printf("  %-24s %+.5f\n", ws[k].label, ws[k].w)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Command modelselect reproduces the demo's Model Selection tab
// (Figure 2a): rank every attribute by its pairwise mutual information
// with a chosen label (inventoryunits) and keep those above a
// threshold, watching relevance evolve as bulks of updates stream in.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/fivm"
	"repro/internal/dataset"
)

func main() {
	threshold := flag.Float64("threshold", 0.2, "MI threshold for feature selection")
	bulks := flag.Int("bulks", 3, "number of 10K-update bulks to process")
	flag.Parse()

	db := dataset.Retailer(dataset.DefaultRetailerConfig())
	var rels []fivm.RelationSpec
	for _, r := range db.Relations {
		rels = append(rels, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
	}
	label := "inventoryunits"
	features := []fivm.FeatureSpec{
		{Attr: label, BinWidth: 50}, // label, binned for MI
		{Attr: "ksn", Categorical: true},
		{Attr: "prize", BinWidth: 10},
		{Attr: "subcategory", Categorical: true},
		{Attr: "category", Categorical: true},
		{Attr: "categoryCluster", Categorical: true},
		{Attr: "zip", Categorical: true},
		{Attr: "avghhi", BinWidth: 20_000},
		{Attr: "population", BinWidth: 25_000},
		{Attr: "maxtemp", BinWidth: 5},
		{Attr: "rain", Categorical: true},
	}
	eng, err := fivm.Open(fivm.Config{Relations: rels, Features: features})
	if err != nil {
		log.Fatal(err)
	}
	an := eng.(*fivm.Analysis)
	if err := an.Init(db.TupleMap()); err != nil {
		log.Fatal(err)
	}

	show := func() {
		ranking, selected, err := an.SelectFeatures(label, *threshold)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("attributes ranked by MI with %s (threshold %.2f):\n", label, *threshold)
		for _, r := range ranking {
			mark := " "
			if r.MI >= *threshold {
				mark = "*"
			}
			fmt.Printf("  %s %-18s %.4f\n", mark, r.Attr, r.MI)
		}
		fmt.Printf("selected features: %v\n\n", selected)
	}

	fmt.Println("=== initial database ===")
	show()

	stream, err := dataset.NewStream(db, dataset.StreamConfig{
		Relation: "Inventory", Total: *bulks * 10_000, DeleteRatio: 0.3, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, bulk := range stream.Bulks(10_000) {
		if err := an.Apply(bulk); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== after bulk %d (%d updates) ===\n", i+1, len(bulk))
		show()
	}
}

// Command chowliu reproduces the demo's Chow-Liu Tree tab (Figure 2c):
// it maintains the pairwise mutual-information count tables over the
// synthetic Retailer join (continuous attributes discretized into bins),
// and after every bulk of 10K updates rebuilds the MI matrix and the
// Chow-Liu tree rooted at ksn.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/fivm"
	"repro/internal/dataset"
)

func main() {
	db := dataset.Retailer(dataset.DefaultRetailerConfig())

	var rels []fivm.RelationSpec
	for _, r := range db.Relations {
		rels = append(rels, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
	}
	// A representative attribute subset (full 43-attribute matrices run
	// in the benchmark harness): categorical attributes one-hot, the
	// continuous ones binned.
	features := []fivm.FeatureSpec{
		{Attr: "ksn", Categorical: true},
		{Attr: "inventoryunits", BinWidth: 50},
		{Attr: "subcategory", Categorical: true},
		{Attr: "category", Categorical: true},
		{Attr: "categoryCluster", Categorical: true},
		{Attr: "prize", BinWidth: 10},
		{Attr: "zip", Categorical: true},
		{Attr: "rgn_cd", Categorical: true},
		{Attr: "maxtemp", BinWidth: 5},
		{Attr: "rain", Categorical: true},
	}
	eng, err := fivm.Open(fivm.Config{Relations: rels, Features: features})
	if err != nil {
		log.Fatal(err)
	}
	an := eng.(*fivm.Analysis)
	if err := an.Init(db.TupleMap()); err != nil {
		log.Fatal(err)
	}

	printState := func() {
		mi, err := an.MI()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("pairwise MI matrix (nats):")
		fmt.Printf("%18s", "")
		for _, a := range mi.Attrs {
			fmt.Printf(" %7.7s", a)
		}
		fmt.Println()
		for i, a := range mi.Attrs {
			fmt.Printf("%18s", a)
			for j := range mi.Attrs {
				fmt.Printf(" %7.3f", mi.At(i, j))
			}
			_ = a
			fmt.Println()
		}
		tree, err := an.ChowLiu("ksn")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nChow-Liu tree (root ksn, total MI %.3f):\n%s\n", tree.TotalMI, tree)
	}

	fmt.Println("=== initial database ===")
	printState()

	stream, err := dataset.NewStream(db, dataset.StreamConfig{
		Relation: "Inventory", Total: 20_000, DeleteRatio: 0.25, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, bulk := range stream.Bulks(10_000) {
		t0 := time.Now()
		if err := an.Apply(bulk); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== after bulk %d (%d updates, maintained in %v) ===\n",
			i+1, len(bulk), time.Since(t0).Round(time.Millisecond))
		printState()
	}
}

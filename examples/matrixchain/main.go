// Command matrixchain demonstrates the paper's observation that the
// same view tree maintains matrix chain multiplication when the ring is
// swapped: matrices become relations over their index pairs with entries
// as float-ring payloads, the chain product A·B·C becomes the query
//
//	SELECT I, L, SUM(entryA * entryB * entryC)
//	FROM MA NATURAL JOIN MB NATURAL JOIN MC GROUP BY I, L
//
// (with entries living in payloads rather than columns), and updating a
// single matrix entry incrementally maintains the product.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/relation"
	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

// dims of the chain A(4×3) · B(3×5) · C(5×2).
const (
	dimI = 4
	dimJ = 3
	dimK = 5
	dimL = 2
)

func main() {
	rng := rand.New(rand.NewSource(42))
	f := ring.Floats{}

	// Matrices as weighted relations: keys are index pairs, payloads are
	// entries.
	a := randomMatrix(rng, "I", "J", dimI, dimJ)
	b := randomMatrix(rng, "J", "K", dimJ, dimK)
	c := randomMatrix(rng, "K", "L", dimK, dimL)

	rels := []vo.Rel{
		{Name: "MA", Schema: value.NewSchema("I", "J")},
		{Name: "MB", Schema: value.NewSchema("J", "K")},
		{Name: "MC", Schema: value.NewSchema("K", "L")},
	}
	tr, err := view.New(view.Spec[float64]{
		Ring:      f,
		Relations: rels,
		Free:      []string{"I", "L"}, // the outer indices survive
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.InitWeighted(map[string]*relation.Map[float64]{
		"MA": a, "MB": b, "MC": c,
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("A·B·C via the view tree (entries as ring payloads):")
	printProduct(tr)

	// Verify against direct evaluation.
	direct := chainProduct(a, b, c)
	fmt.Printf("matches direct evaluation: %v\n\n", productsEqual(tr, direct))

	// Incremental entry update: ΔA[0,0] = +1 means the delta payload is
	// +1 at key (0,0); the product updates without recomputation.
	fmt.Println("applying ΔA[0,0] += 1 incrementally:")
	delta := relation.New[float64](value.NewSchema("I", "J"))
	delta.Set(value.T(0, 0), 1)
	if err := tr.ApplyDelta("MA", delta); err != nil {
		log.Fatal(err)
	}
	a.Merge(f, value.T(0, 0), 1)
	direct = chainProduct(a, b, c)
	printProduct(tr)
	fmt.Printf("matches direct re-evaluation: %v\n", productsEqual(tr, direct))
}

func randomMatrix(rng *rand.Rand, rowAttr, colAttr string, rows, cols int) *relation.Map[float64] {
	m := relation.New[float64](value.NewSchema(rowAttr, colAttr))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(value.T(i, j), float64(rng.Intn(9)+1))
		}
	}
	return m
}

// chainProduct multiplies the three matrices directly.
func chainProduct(a, b, c *relation.Map[float64]) [][]float64 {
	ab := make([][]float64, dimI)
	for i := range ab {
		ab[i] = make([]float64, dimK)
		for k := 0; k < dimK; k++ {
			for j := 0; j < dimJ; j++ {
				av, _ := a.Get(value.T(i, j))
				bv, _ := b.Get(value.T(j, k))
				ab[i][k] += av * bv
			}
		}
	}
	out := make([][]float64, dimI)
	for i := range out {
		out[i] = make([]float64, dimL)
		for l := 0; l < dimL; l++ {
			for k := 0; k < dimK; k++ {
				cv, _ := c.Get(value.T(k, l))
				out[i][l] += ab[i][k] * cv
			}
		}
	}
	return out
}

func printProduct(tr *view.Tree[float64]) {
	for i := 0; i < dimI; i++ {
		fmt.Print("  [")
		for l := 0; l < dimL; l++ {
			fmt.Printf(" %8.0f", tr.Result().GetOr(value.T(i, l), 0))
		}
		fmt.Println(" ]")
	}
}

func productsEqual(tr *view.Tree[float64], want [][]float64) bool {
	for i := range want {
		for l := range want[i] {
			if tr.Result().GetOr(value.T(i, l), 0) != want[i][l] {
				return false
			}
		}
	}
	return true
}

// Command matrixchain demonstrates the paper's observation that the
// same view tree maintains matrix chain multiplication when the ring is
// swapped: matrices become relations over their index pairs with entries
// as float-ring payloads, the chain product A·B·C becomes the query
//
//	SELECT I, L, SUM(1)
//	FROM MA NATURAL JOIN MB NATURAL JOIN MC GROUP BY I, L
//
// (with entries living in payloads rather than columns — the SUM(1)
// lift contributes nothing; InitWeighted supplies the entries), and
// updating a single matrix entry incrementally maintains the product.
//
// The whole workload runs through the unified fivm API: Open compiles
// the query into a float-ring engine, and the generic core's
// InitWeighted/ApplyDelta lifecycle does the rest.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/fivm"
	"repro/internal/relation"
	"repro/internal/ring"
	"repro/internal/value"
)

// dims of the chain A(4×3) · B(3×5) · C(5×2).
const (
	dimI = 4
	dimJ = 3
	dimK = 5
	dimL = 2
)

func main() {
	rng := rand.New(rand.NewSource(42))
	f := ring.Floats{}

	// Matrices as weighted relations: keys are index pairs, payloads are
	// entries.
	a := randomMatrix(rng, "I", "J", dimI, dimJ)
	b := randomMatrix(rng, "J", "K", dimJ, dimK)
	c := randomMatrix(rng, "K", "L", dimK, dimL)

	// KindFloat forces the float ring (SUM(1) alone would infer a count
	// engine over Z — entries are floats).
	eng, err := fivm.Open(fivm.Config{
		Kind: fivm.KindFloat,
		Relations: []fivm.RelationSpec{
			{Name: "MA", Attrs: []string{"I", "J"}},
			{Name: "MB", Attrs: []string{"J", "K"}},
			{Name: "MC", Attrs: []string{"K", "L"}},
		},
		Query: "SELECT I, L, SUM(1) FROM MA NATURAL JOIN MB NATURAL JOIN MC GROUP BY I, L",
	})
	if err != nil {
		log.Fatal(err)
	}
	fe := eng.(*fivm.FloatEngine)
	if err := fe.InitWeighted(map[string]*relation.Map[float64]{
		"MA": a, "MB": b, "MC": c,
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("A·B·C via the view tree (entries as ring payloads):")
	printProduct(fe)

	// Verify against direct evaluation.
	direct := chainProduct(a, b, c)
	fmt.Printf("matches direct evaluation: %v\n\n", productsEqual(fe, direct))

	// Incremental entry update: ΔA[0,0] = +1 means the delta payload is
	// +1 at key (0,0); the product updates without recomputation.
	fmt.Println("applying ΔA[0,0] += 1 incrementally:")
	delta := relation.New[float64](value.NewSchema("I", "J"))
	delta.Set(value.T(0, 0), 1)
	if err := fe.ApplyDelta("MA", delta); err != nil {
		log.Fatal(err)
	}
	a.Merge(f, value.T(0, 0), 1)
	direct = chainProduct(a, b, c)
	printProduct(fe)
	fmt.Printf("matches direct re-evaluation: %v\n", productsEqual(fe, direct))
}

func randomMatrix(rng *rand.Rand, rowAttr, colAttr string, rows, cols int) *relation.Map[float64] {
	m := relation.New[float64](value.NewSchema(rowAttr, colAttr))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(value.T(i, j), float64(rng.Intn(9)+1))
		}
	}
	return m
}

// chainProduct multiplies the three matrices directly.
func chainProduct(a, b, c *relation.Map[float64]) [][]float64 {
	ab := make([][]float64, dimI)
	for i := range ab {
		ab[i] = make([]float64, dimK)
		for k := 0; k < dimK; k++ {
			for j := 0; j < dimJ; j++ {
				av, _ := a.Get(value.T(i, j))
				bv, _ := b.Get(value.T(j, k))
				ab[i][k] += av * bv
			}
		}
	}
	out := make([][]float64, dimI)
	for i := range out {
		out[i] = make([]float64, dimL)
		for l := 0; l < dimL; l++ {
			for k := 0; k < dimK; k++ {
				cv, _ := c.Get(value.T(k, l))
				out[i][l] += ab[i][k] * cv
			}
		}
	}
	return out
}

func printProduct(fe *fivm.FloatEngine) {
	for i := 0; i < dimI; i++ {
		fmt.Print("  [")
		for l := 0; l < dimL; l++ {
			fmt.Printf(" %8.0f", fe.Result().GetOr(value.T(i, l), 0))
		}
		fmt.Println(" ]")
	}
}

func productsEqual(fe *fivm.FloatEngine, want [][]float64) bool {
	for i := range want {
		for l := range want[i] {
			if fe.Result().GetOr(value.T(i, l), 0) != want[i][l] {
				return false
			}
		}
	}
	return true
}

// Command serving shows a non-Analysis engine behind the fivm-serve
// stack: a grouped COUNT engine (orders per status over an
// orders ⋈ customers join) hosted by the concurrent serving layer and
// queried through the public fivm/client package while updates stream
// in over the v1 HTTP API.
//
// Everything the daemon does — sharded batched ingestion, lock-free
// published models, the HTTP surface — is engine-agnostic: the same
// serve.Server would host a float-SUM, COVAR, join-result, or full
// analysis engine; only the fivm.Open config differs.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"repro/fivm"
	"repro/fivm/client"
	"repro/internal/serve"
	"repro/internal/value"
)

func main() {
	// Orders(order_id, cust_id, status) ⋈ Customers(cust_id, region):
	// count orders per status.
	eng, err := fivm.Open(fivm.Config{
		Relations: []fivm.RelationSpec{
			{Name: "Orders", Attrs: []string{"order_id", "cust_id", "status"}},
			{Name: "Customers", Attrs: []string{"cust_id", "region"}},
		},
		Query: "SELECT status, SUM(1) FROM Orders NATURAL JOIN Customers GROUP BY status",
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Init(map[string][]value.Tuple{
		"Customers": {
			value.T(1, "emea"), value.T(2, "emea"), value.T(3, "apac"),
		},
		"Orders": {
			value.T(100, 1, "open"), value.T(101, 2, "open"), value.T(102, 3, "shipped"),
		},
	}); err != nil {
		log.Fatal(err)
	}

	// Wrap the engine in the serving pipeline and expose it over HTTP on
	// an ephemeral port.
	srv, err := serve.New(eng, serve.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: serve.NewHandler(srv)}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("count engine (%s) serving on %s\n\n", srv.Kind(), base)

	// The typed client speaks the v1 wire protocol: POST /v1/update,
	// GET /v1/model, GET /v1/stats, with the uniform error envelope
	// unwrapped into *client.APIError and 429s retried with backoff.
	ctx := context.Background()
	cli := client.New(base)

	model, err := cli.Model(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GET /v1/model (initial):")
	fmt.Println(indentJSON(model.Body))

	// Stream updates: two new open orders, one ships, one cancels
	// (delete). wait=true gives read-your-writes before the next GET.
	ack, err := cli.Update(ctx, []client.Update{
		client.NewUpdate("Orders", 1, 103, 1, "open"),
		client.NewUpdate("Orders", 1, 104, 3, "open"),
		client.NewUpdate("Orders", -1, 100, 1, "open"),
		client.NewUpdate("Orders", 1, 100, 1, "shipped"),
	}, true)
	if err != nil {
		log.Fatal(err)
	}

	model, err = cli.Model(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGET /v1/model (after streaming %d updates):\n", ack.Accepted)
	fmt.Println(indentJSON(model.Body))

	stats, err := cli.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGET /v1/stats:")
	fmt.Println(indentJSON(stats.Raw))
}

func indentJSON(v any) string {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Sprint(v)
	}
	return string(out)
}

// Command serving shows a non-Analysis engine behind the fivm-serve
// stack: a grouped COUNT engine (orders per status over an
// orders ⋈ customers join) hosted by the concurrent serving layer and
// queried over HTTP while updates stream in.
//
// Everything the daemon does — sharded batched ingestion, lock-free
// published models, the HTTP surface — is engine-agnostic: the same
// serve.Server would host a float-SUM, COVAR, join-result, or full
// analysis engine; only the fivm.Open config differs.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"repro/fivm"
	"repro/internal/serve"
	"repro/internal/value"
)

func main() {
	// Orders(order_id, cust_id, status) ⋈ Customers(cust_id, region):
	// count orders per status.
	eng, err := fivm.Open(fivm.Config{
		Relations: []fivm.RelationSpec{
			{Name: "Orders", Attrs: []string{"order_id", "cust_id", "status"}},
			{Name: "Customers", Attrs: []string{"cust_id", "region"}},
		},
		Query: "SELECT status, SUM(1) FROM Orders NATURAL JOIN Customers GROUP BY status",
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Init(map[string][]value.Tuple{
		"Customers": {
			value.T(1, "emea"), value.T(2, "emea"), value.T(3, "apac"),
		},
		"Orders": {
			value.T(100, 1, "open"), value.T(101, 2, "open"), value.T(102, 3, "shipped"),
		},
	}); err != nil {
		log.Fatal(err)
	}

	// Wrap the engine in the serving pipeline and expose it over HTTP on
	// an ephemeral port.
	srv, err := serve.New(eng, serve.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: serve.NewHandler(srv)}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("count engine (%s) serving on %s\n\n", srv.Kind(), base)

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return strings.TrimSpace(string(body))
	}
	post := func(path, body string) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}

	fmt.Println("GET /model (initial):")
	fmt.Println(indentJSON(get("/model")))

	// Stream updates: two new open orders, one ships, one cancels
	// (delete). ?wait=1 gives read-your-writes before the next GET.
	post("/update?wait=1", `{"updates":[
		{"rel":"Orders","tuple":[103,1,"open"]},
		{"rel":"Orders","tuple":[104,3,"open"]},
		{"rel":"Orders","tuple":[100,1,"open"],"mult":-1},
		{"rel":"Orders","tuple":[100,1,"shipped"]}]}`)

	fmt.Println("\nGET /model (after streaming 4 updates):")
	fmt.Println(indentJSON(get("/model")))
	fmt.Println("\nGET /stats:")
	fmt.Println(indentJSON(get("/stats")))
}

func indentJSON(s string) string {
	var v any
	if err := json.Unmarshal([]byte(s), &v); err != nil {
		return s
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return s
	}
	return string(out)
}

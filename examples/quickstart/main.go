// Command quickstart walks through Figure 1 of the paper: the query
// Q = SUM(gB(B) * gC(C) * gD(D)) over R(A,B) ⋈ S(A,C,D) on the toy
// database, evaluated under four rings — Z counts, the degree-3 COVAR
// ring (continuous B, C, D), the generalized ring with categorical C,
// and the MI count tables (all categorical) — followed by the figure's
// δR maintenance step.
package main

import (
	"fmt"
	"log"

	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

func main() {
	rels := []vo.Rel{
		{Name: "R", Schema: value.NewSchema("A", "B")},
		{Name: "S", Schema: value.NewSchema("A", "C", "D")},
	}
	data := map[string][]value.Tuple{
		"R": {value.T("a1", 1), value.T("a2", 2)},
		"S": {value.T("a1", 1, 1), value.T("a1", 2, 3), value.T("a2", 2, 2)},
	}
	order, err := vo.Build(rels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("View tree (variable order) for R(A,B) ⋈ S(A,C,D):")
	fmt.Print(order)
	fmt.Println()

	// Scenario 1: the count aggregate over the Z ring.
	count, err := view.New(view.Spec[int64]{Ring: ring.Ints{}, Order: order, Relations: rels})
	if err != nil {
		log.Fatal(err)
	}
	if err := count.Init(data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q = SUM(1)                      -> %d tuples in the join\n", count.ResultPayload())

	// Scenario 2: COVAR over continuous B, C, D (degree-3 matrix ring).
	cr := ring.NewCovarRing(3)
	covar, err := view.New(view.Spec[*ring.Covar]{
		Ring: cr, Order: order, Relations: rels,
		Lifts: map[string]ring.Lift[*ring.Covar]{"B": cr.Lift(0), "C": cr.Lift(1), "D": cr.Lift(2)},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := covar.Init(data); err != nil {
		log.Fatal(err)
	}
	p := covar.ResultPayload()
	fmt.Printf("COVAR (cont. B,C,D)             -> count=%v  s=[%v %v %v]\n", p.Count(), p.Sum(0), p.Sum(1), p.Sum(2))
	fmt.Printf("                                   Q=[BB=%v BC=%v BD=%v CC=%v CD=%v DD=%v]\n",
		p.Prod(0, 0), p.Prod(0, 1), p.Prod(0, 2), p.Prod(1, 1), p.Prod(1, 2), p.Prod(2, 2))

	// Scenario 3: COVAR with categorical C (generalized ring).
	gr := ring.NewRelCovarRing(3)
	mixed, err := view.New(view.Spec[*ring.RelCovar]{
		Ring: gr, Order: order, Relations: rels,
		Lifts: map[string]ring.Lift[*ring.RelCovar]{
			"B": gr.LiftContinuous(0), "C": gr.LiftCategorical(1), "D": gr.LiftContinuous(2),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := mixed.Init(data); err != nil {
		log.Fatal(err)
	}
	mp := mixed.ResultPayload()
	fmt.Printf("COVAR (cat. C; cont. B,D)       -> s_C=%v  Q_BC=%v\n", mp.Sum(1), mp.Prod(0, 1))

	// Scenario 4: MI count tables (all categorical).
	mi, err := view.New(view.Spec[*ring.RelCovar]{
		Ring: gr, Order: order, Relations: rels,
		Lifts: map[string]ring.Lift[*ring.RelCovar]{
			"B": gr.LiftCategorical(0), "C": gr.LiftCategorical(1), "D": gr.LiftCategorical(2),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := mi.Init(data); err != nil {
		log.Fatal(err)
	}
	ip := mi.ResultPayload()
	fmt.Printf("MI (cat. B,C,D)                 -> C_B=%v  C_CD=%v\n", ip.Sum(0), ip.Prod(1, 2))

	// Incremental maintenance: the figure's δR = {(a1, b1) -> +1}.
	fmt.Println("\nApplying δR = insert (a1, b1):")
	if err := count.Insert("R", value.T("a1", 1)); err != nil {
		log.Fatal(err)
	}
	if err := covar.Insert("R", value.T("a1", 1)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  count   -> %d\n", count.ResultPayload())
	np := covar.ResultPayload()
	fmt.Printf("  COVAR   -> count=%v SUM(B)=%v SUM(B*D)=%v\n", np.Count(), np.Sum(0), np.Prod(0, 2))

	fmt.Println("Deleting it again restores the initial state:")
	if err := covar.Delete("R", value.T("a1", 1)); err != nil {
		log.Fatal(err)
	}
	rp := covar.ResultPayload()
	fmt.Printf("  COVAR   -> count=%v SUM(B)=%v (matches the bulk-loaded state: %v)\n",
		rp.Count(), rp.Sum(0), rp.Equal(p))
}

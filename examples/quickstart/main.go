// Command quickstart walks through Figure 1 of the paper: the query
// Q = SUM(gB(B) * gC(C) * gD(D)) over R(A,B) ⋈ S(A,C,D) on the toy
// database, evaluated under four rings — Z counts, the degree-3 COVAR
// ring (continuous B, C, D), the generalized ring with categorical C,
// and the MI count tables (all categorical) — followed by the figure's
// δR maintenance step.
//
// Each scenario is one fivm.Open call: the paper's point (swap the ring,
// keep everything else) is literally a one-field change in the Config.
package main

import (
	"fmt"
	"log"

	"repro/fivm"
	"repro/internal/value"
	"repro/internal/view"
)

func main() {
	rels := []fivm.RelationSpec{
		{Name: "R", Attrs: []string{"A", "B"}},
		{Name: "S", Attrs: []string{"A", "C", "D"}},
	}
	data := map[string][]value.Tuple{
		"R": {value.T("a1", 1), value.T("a2", 2)},
		"S": {value.T("a1", 1, 1), value.T("a1", 2, 3), value.T("a2", 2, 2)},
	}

	// Scenario 1: the count aggregate over the Z ring — a SQL query
	// compiles to a count engine.
	count, err := fivm.Open(fivm.Config{
		Relations: rels,
		Query:     "SELECT SUM(1) FROM R NATURAL JOIN S",
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := count.Init(data); err != nil {
		log.Fatal(err)
	}
	fmt.Println("View tree (variable order) for R(A,B) ⋈ S(A,C,D):")
	fmt.Print(count.ViewTree())
	fmt.Println()
	ce := count.(*fivm.CountEngine)
	fmt.Printf("Q = SUM(1)                      -> %d tuples in the join\n", ce.Payload())

	// Scenario 2: COVAR over continuous B, C, D (degree-3 matrix ring) —
	// the same Config with Attrs instead of a Query.
	covar, err := fivm.Open(fivm.Config{Relations: rels, Attrs: []string{"B", "C", "D"}})
	if err != nil {
		log.Fatal(err)
	}
	if err := covar.Init(data); err != nil {
		log.Fatal(err)
	}
	p, err := covar.(*fivm.CovarEngine).Covar()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COVAR (cont. B,C,D)             -> count=%v  s=[%v %v %v]\n", p.Count(), p.Sum(0), p.Sum(1), p.Sum(2))
	fmt.Printf("                                   Q=[BB=%v BC=%v BD=%v CC=%v CD=%v DD=%v]\n",
		p.Prod(0, 0), p.Prod(0, 1), p.Prod(0, 2), p.Prod(1, 1), p.Prod(1, 2), p.Prod(2, 2))

	// Scenario 3: COVAR with categorical C (generalized ring) — Features
	// instead of Attrs selects the analysis engine.
	mixed, err := fivm.Open(fivm.Config{
		Relations: rels,
		Features: []fivm.FeatureSpec{
			{Attr: "B"}, {Attr: "C", Categorical: true}, {Attr: "D"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := mixed.Init(data); err != nil {
		log.Fatal(err)
	}
	mp := mixed.(*fivm.Analysis).Payload()
	fmt.Printf("COVAR (cat. C; cont. B,D)       -> s_C=%v  Q_BC=%v\n", mp.Sum(1), mp.Prod(0, 1))

	// Scenario 4: MI count tables (all categorical).
	mi, err := fivm.Open(fivm.Config{
		Relations: rels,
		Features: []fivm.FeatureSpec{
			{Attr: "B", Categorical: true}, {Attr: "C", Categorical: true}, {Attr: "D", Categorical: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := mi.Init(data); err != nil {
		log.Fatal(err)
	}
	ip := mi.(*fivm.Analysis).Payload()
	fmt.Printf("MI (cat. B,C,D)                 -> C_B=%v  C_CD=%v\n", ip.Sum(0), ip.Prod(1, 2))

	// Incremental maintenance: the figure's δR = {(a1, b1) -> +1}. The
	// lifecycle is identical across engines — one Apply call each.
	fmt.Println("\nApplying δR = insert (a1, b1):")
	dR := []view.Update{{Rel: "R", Tuple: value.T("a1", 1), Mult: 1}}
	if err := count.Apply(dR); err != nil {
		log.Fatal(err)
	}
	if err := covar.Apply(dR); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  count   -> %d\n", ce.Payload())
	np, err := covar.(*fivm.CovarEngine).Covar()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  COVAR   -> count=%v SUM(B)=%v SUM(B*D)=%v\n", np.Count(), np.Sum(0), np.Prod(0, 2))

	fmt.Println("Deleting it again restores the initial state:")
	if err := covar.Apply([]view.Update{{Rel: "R", Tuple: value.T("a1", 1), Mult: -1}}); err != nil {
		log.Fatal(err)
	}
	rp, err := covar.(*fivm.CovarEngine).Covar()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  COVAR   -> count=%v SUM(B)=%v (matches the bulk-loaded state: %v)\n",
		rp.Count(), rp.Sum(0), rp.Equal(p))
}

// Package fivm is the public API of the F-IVM reproduction: real-time
// analytics over fast-evolving relational data. Its central claim —
// the paper's — is that ONE view-maintenance mechanism serves many
// workloads by swapping the payload ring and nothing else. The API is
// shaped accordingly:
//
//   - Engine[V] is the generic core: a view tree over one ring plus the
//     shared lifecycle (Init, InitWeighted, Apply, ApplyDelta, DeltaFor,
//     CloneView, Stats, WriteSnapshot/ReadSnapshot, PublishModel,
//     SetParallelism).
//   - Six thin instantiations add typed accessors: Analysis
//     (generalized COVAR / MI / ridge / Chow-Liu over mixed features),
//     CountEngine and FloatEngine (SUM aggregates parsed from a small
//     SQL subset), CovarEngine and RangedCovarEngine (scalar COVAR over
//     continuous attributes), and JoinEngine (the join result itself).
//   - Open(Config) is the one entry point that compiles either a SQL
//     query or a declarative relations+features config into the right
//     engine, returning the kind-independent AnyEngine surface the
//     serving layer hosts.
//
// # Key invariants
//
//   - Views, deltas, and inputs are all keyed relations with ring
//     payloads; payloads are immutable under ring operations, so
//     engines, snapshots, and concurrent readers share them freely.
//   - Result-access convention: Payload/Result never fail (the empty
//     join yields the ring zero); typed accessors that derive
//     structure from the payload (Covar, Sigma, Ridge, MI, a Model's
//     ResultJSON) return a descriptive error on the empty join.
//   - An Engine is single-writer. Two deliberate exceptions support
//     the serving layer: BuildDelta/DeltaFor read only immutable tree
//     metadata and may run concurrently with maintenance, and every
//     published Model is an isolated deep copy. Config.Workers enables
//     hash-partitioned parallel delta propagation INSIDE one
//     ApplyDelta call — the views it produces are identical to the
//     sequential path's, and the single-writer contract is unchanged.
//   - Maintenance scratch lives on the engine (its view tree): delta
//     buffers, propagation-steps and partition slots, and cached ±1
//     payloads are recycled across Apply/ApplyDelta calls under the
//     single-writer contract, which is why the steady-state hot path
//     allocates little (pinned by alloc_test.go; see docs/PERF.md). A
//     delta passed to ApplyDelta/ApplyBuilt is ceded to the engine —
//     callers must not mutate it afterwards.
//   - Per-update maintenance is O(|delta|), not O(database): delta
//     propagation probes persistent join-key indexes on the sibling
//     views and co-anchored relations instead of scanning them, so
//     single-tuple ApplyDelta latency stays ~flat as base relations
//     grow (BenchmarkUpdateLatencyScaling; docs/ARCHITECTURE.md has
//     the index design). Indexes are engine-internal: they build
//     lazily on first use and registration survives Init and
//     ReadSnapshot, with no API surface to manage.
//
// A minimal session:
//
//	eng, _ := fivm.Open(fivm.Config{
//	    Relations: []fivm.RelationSpec{{Name: "R", Attrs: []string{"A", "B"}}, ...},
//	    Features:  []fivm.FeatureSpec{{Attr: "B"}, {Attr: "C", Categorical: true}},
//	})
//	an := eng.(*fivm.Analysis)
//	an.Init(initialTuples)
//	an.Apply(updates)          // inserts and deletes
//	sigma, _ := an.Covar()     // feeds ml.RidgeModel
package fivm

package fivm_test

import (
	"testing"

	"repro/fivm"
	"repro/internal/value"
	"repro/internal/view"
)

func cloneFixture(t *testing.T) *fivm.Analysis {
	t.Helper()
	an, err := fivm.NewAnalysis(fivm.AnalysisConfig{
		Relations: []fivm.RelationSpec{{Name: "R", Attrs: []string{"A", "B"}}},
		Features:  []fivm.FeatureSpec{{Attr: "A"}, {Attr: "B", Categorical: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Init(map[string][]value.Tuple{
		"R": {value.T(1, "x"), value.T(2, "y"), value.T(3, "x")},
	}); err != nil {
		t.Fatal(err)
	}
	return an
}

// ClonePayload must survive later engine mutation untouched — the
// invariant the serving layer's lock-free snapshots rest on.
func TestClonePayloadIsIsolated(t *testing.T) {
	an := cloneFixture(t)
	clone := an.ClonePayload()
	if !clone.Equal(an.Payload()) {
		t.Fatal("clone differs from source payload")
	}
	if err := an.Apply([]view.Update{
		{Rel: "R", Tuple: value.T(40, "z"), Mult: 1},
		{Rel: "R", Tuple: value.T(1, "x"), Mult: -1},
	}); err != nil {
		t.Fatal(err)
	}
	if clone.Equal(an.Payload()) {
		t.Fatal("engine payload should have moved on")
	}
	if got := clone.Count().Scalar(); got != 3 {
		t.Fatalf("clone count = %v, want the pre-update 3", got)
	}
}

func TestCloneViewIsIsolated(t *testing.T) {
	an := cloneFixture(t)
	cv := an.CloneView()
	before := cv.String()
	if err := an.Apply([]view.Update{{Rel: "R", Tuple: value.T(50, "w"), Mult: 1}}); err != nil {
		t.Fatal(err)
	}
	if cv.String() != before {
		t.Fatal("cloned view changed after engine update")
	}
}

func TestDeltaForFacade(t *testing.T) {
	an := cloneFixture(t)
	d, err := an.DeltaFor("R", []view.Update{
		{Rel: "R", Tuple: value.T(7, "q"), Mult: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := an.ApplyDelta("R", d); err != nil {
		t.Fatal(err)
	}
	if got := an.Payload().Count().Scalar(); got != 5 {
		t.Fatalf("count = %v, want 5", got)
	}
	if _, err := an.DeltaFor("Nope", nil); err == nil {
		t.Fatal("DeltaFor must reject unknown relations")
	}
	if got := an.RelationNames(); len(got) != 1 || got[0] != "R" {
		t.Fatalf("RelationNames = %v", got)
	}
}

// The pure-constant aggregate must be rejected during validation, before
// any view tree is built.
func TestFloatEnginePureConstantRejectedEarly(t *testing.T) {
	cat := fivm.NewCatalog()
	if err := cat.AddRelation("S", "A", "D"); err != nil {
		t.Fatal(err)
	}
	q, err := fivm.Parse(cat, "SELECT SUM(2) FROM S")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fivm.NewFloatEngine(q, nil); err == nil {
		t.Fatal("pure-constant aggregate SUM(2) accepted")
	}
	// SUM(1) stays valid as a float-ring count.
	q1, err := fivm.Parse(cat, "SELECT SUM(1) FROM S")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := fivm.NewFloatEngine(q1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Init(map[string][]value.Tuple{"S": {value.T(1, 2), value.T(3, 4)}}); err != nil {
		t.Fatal(err)
	}
	if got := eng.Payload(); got != 2 {
		t.Fatalf("SUM(1) = %v, want 2", got)
	}
}

package fivm

import (
	"io"

	"repro/internal/ring"
)

// WriteSnapshot persists the analysis' input relations (the views are
// derived state and are recomputed on restore). The snapshot is
// self-contained binary; pair it with an Analysis built from the same
// AnalysisConfig.
func (a *Analysis) WriteSnapshot(w io.Writer) error {
	return a.tree.WriteSnapshot(w, ring.RelCovarCodec{Ring: a.ring})
}

// ReadSnapshot loads input relations from a snapshot written by
// WriteSnapshot and re-evaluates every view. The receiving Analysis
// must have the same relations, features, and variable order as the
// writer.
func (a *Analysis) ReadSnapshot(r io.Reader) error {
	return a.tree.ReadSnapshot(r, ring.RelCovarCodec{Ring: a.ring})
}

package fivm_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/fivm"
	"repro/internal/value"
	"repro/internal/view"
)

// engineState renders every view, source, and the result of an engine's
// tree deterministically: sorted tuples, canonical payload rendering.
// Two engines with bit-identical maintained state render identically.
func engineState[V any](e *fivm.Engine[V]) string {
	var b strings.Builder
	var walk func(n *view.Node[V])
	walk = func(n *view.Node[V]) {
		fmt.Fprintf(&b, "view %s = %s\n", n.Var(), n.View())
		for _, c := range n.Children() {
			walk(c)
		}
	}
	tr := e.Tree()
	for _, r := range tr.Roots() {
		walk(r)
	}
	for _, name := range tr.RelationNames() {
		src, _ := tr.Source(name)
		fmt.Fprintf(&b, "source %s = %s\n", name, src)
	}
	fmt.Fprintf(&b, "result = %s\n", e.Result())
	return b.String()
}

// snapshotState dispatches engineState over the six concrete kinds.
func snapshotState(t *testing.T, e fivm.AnyEngine) string {
	t.Helper()
	switch x := e.(type) {
	case *fivm.Analysis:
		return engineState(x.Engine)
	case *fivm.CountEngine:
		return engineState(x.Engine)
	case *fivm.FloatEngine:
		return engineState(x.Engine)
	case *fivm.CovarEngine:
		return engineState(x.Engine)
	case *fivm.RangedCovarEngine:
		return engineState(x.Engine)
	case *fivm.JoinEngine:
		return engineState(x.Engine)
	default:
		t.Fatalf("unknown engine type %T", e)
		return ""
	}
}

// forceParallel drops the view layer's batch-size threshold to 1 so the
// test's modest batches exercise the parallel path.
func forceParallel(t *testing.T, e fivm.AnyEngine, workers int) {
	t.Helper()
	switch x := e.(type) {
	case *fivm.Analysis:
		x.Tree().SetParallelism(workers, 1)
	case *fivm.CountEngine:
		x.Tree().SetParallelism(workers, 1)
	case *fivm.FloatEngine:
		x.Tree().SetParallelism(workers, 1)
	case *fivm.CovarEngine:
		x.Tree().SetParallelism(workers, 1)
	case *fivm.RangedCovarEngine:
		x.Tree().SetParallelism(workers, 1)
	case *fivm.JoinEngine:
		x.Tree().SetParallelism(workers, 1)
	default:
		t.Fatalf("unknown engine type %T", e)
	}
}

func equivRelations() []fivm.RelationSpec {
	return []fivm.RelationSpec{
		{Name: "R", Attrs: []string{"A", "B"}},
		{Name: "S", Attrs: []string{"B", "C"}},
		{Name: "T", Attrs: []string{"C", "D"}},
	}
}

// equivStream builds a mixed insert/delete stream over the relations
// with small integer values (so every float sum is exact and "identical"
// means bit-identical). Deletes target live tuples, so payloads cancel
// to zero mid-stream.
func equivStream(rnd *rand.Rand, n int) []view.Update {
	rels := equivRelations()
	live := map[string][]value.Tuple{}
	var ups []view.Update
	for len(ups) < n {
		r := rels[rnd.Intn(len(rels))]
		if l := live[r.Name]; len(l) > 0 && rnd.Float64() < 0.35 {
			i := rnd.Intn(len(l))
			ups = append(ups, view.Update{Rel: r.Name, Tuple: l[i], Mult: -1})
			live[r.Name] = append(l[:i], l[i+1:]...)
			continue
		}
		tp := make(value.Tuple, len(r.Attrs))
		for i := range tp {
			tp[i] = value.Int(int64(rnd.Intn(5)))
		}
		ups = append(ups, view.Update{Rel: r.Name, Tuple: tp, Mult: 1})
		live[r.Name] = append(live[r.Name], tp)
	}
	return ups
}

// TestParallelEquivalenceAllKinds is the correctness anchor of parallel
// delta propagation: for every engine kind, a sequential and a
// 4-worker engine driven through the same randomized mixed
// insert/delete stream must hold bit-identical views, sources, results,
// and published models after every batch.
func TestParallelEquivalenceAllKinds(t *testing.T) {
	configs := map[fivm.Kind]fivm.Config{
		fivm.KindCount: {
			Relations: equivRelations(),
			Query:     "SELECT B, SUM(1) FROM R NATURAL JOIN S NATURAL JOIN T GROUP BY B",
		},
		fivm.KindFloat: {
			Relations: equivRelations(),
			Query:     "SELECT SUM(A * D) FROM R NATURAL JOIN S NATURAL JOIN T",
		},
		fivm.KindCovar: {
			Relations: equivRelations(),
			Attrs:     []string{"A", "B", "D"},
		},
		fivm.KindRangedCovar: {
			Relations: equivRelations(),
			Kind:      fivm.KindRangedCovar,
			Attrs:     []string{"A", "B", "D"},
		},
		fivm.KindAnalysis: {
			Relations: equivRelations(),
			Features: []fivm.FeatureSpec{
				{Attr: "A"},
				{Attr: "B", Categorical: true},
				{Attr: "D"},
			},
		},
		fivm.KindJoin: {
			Relations: equivRelations(),
		},
	}
	for kind, cfg := range configs {
		t.Run(string(kind), func(t *testing.T) {
			seq, err := fivm.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			par, err := fivm.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := par.Kind(); got != kind {
				t.Fatalf("Open built a %s engine, want %s", got, kind)
			}
			forceParallel(t, par, 4)

			rnd := rand.New(rand.NewSource(99))
			init := map[string][]value.Tuple{}
			for _, r := range equivRelations() {
				for i := 0; i < 25; i++ {
					tp := make(value.Tuple, len(r.Attrs))
					for j := range tp {
						tp[j] = value.Int(int64(rnd.Intn(5)))
					}
					init[r.Name] = append(init[r.Name], tp)
				}
			}
			if err := seq.Init(init); err != nil {
				t.Fatal(err)
			}
			if err := par.Init(init); err != nil {
				t.Fatal(err)
			}

			ups := equivStream(rnd, 500)
			const batch = 80
			for i := 0; i < len(ups); i += batch {
				end := i + batch
				if end > len(ups) {
					end = len(ups)
				}
				if err := seq.Apply(ups[i:end]); err != nil {
					t.Fatal(err)
				}
				if err := par.Apply(ups[i:end]); err != nil {
					t.Fatal(err)
				}
				s, p := snapshotState(t, seq), snapshotState(t, par)
				if s != p {
					t.Fatalf("state diverged after batch ending at %d:\nsequential:\n%s\nparallel:\n%s", end, s, p)
				}
			}

			// Published models must agree too (the analysis ridge fit is
			// iterative float math, deterministic given identical payloads).
			sj, serr := seq.PublishModel(nil).ResultJSON()
			pj, perr := par.PublishModel(nil).ResultJSON()
			if (serr == nil) != (perr == nil) {
				t.Fatalf("model render: sequential err %v, parallel err %v", serr, perr)
			}
			if serr == nil {
				sb, _ := json.Marshal(sj)
				pb, _ := json.Marshal(pj)
				if string(sb) != string(pb) {
					t.Fatalf("published models diverged:\n%s\nvs\n%s", sb, pb)
				}
			}
		})
	}
}

// TestOpenWorkers: Config.Workers wires through Open into the view
// tree; 0 leaves the sequential default.
func TestOpenWorkers(t *testing.T) {
	mk := func(workers int) *fivm.CountEngine {
		eng, err := fivm.Open(fivm.Config{
			Relations: equivRelations(),
			Query:     "SELECT SUM(1) FROM R NATURAL JOIN S NATURAL JOIN T",
			Workers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng.(*fivm.CountEngine)
	}
	if w, _ := mk(0).Tree().Parallelism(); w != 1 {
		t.Fatalf("Workers 0: tree has %d workers, want sequential", w)
	}
	if w, _ := mk(4).Tree().Parallelism(); w != 4 {
		t.Fatalf("Workers 4: tree has %d workers", w)
	}
	if w, _ := mk(-1).Tree().Parallelism(); w < 1 {
		t.Fatalf("Workers -1 (GOMAXPROCS): tree has %d workers", w)
	}
	// SetParallelism(1) restores the sequential path on a live engine.
	e := mk(8)
	e.SetParallelism(1)
	if w, _ := e.Tree().Parallelism(); w != 1 {
		t.Fatalf("SetParallelism(1): tree has %d workers", w)
	}
}

// TestParallelEquivalenceCategorical drives the relational-ring payloads
// (categorical one-hot tensors) through the parallel path with a larger
// worker count than GOMAXPROCS, checking the pool degrades gracefully.
func TestParallelEquivalenceCategorical(t *testing.T) {
	cfg := fivm.Config{
		Relations: equivRelations(),
		Features: []fivm.FeatureSpec{
			{Attr: "A", Categorical: true},
			{Attr: "C", Categorical: true},
			{Attr: "D", BinWidth: 2},
		},
	}
	seq, err := fivm.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := fivm.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	forceParallel(t, par, 16)
	rnd := rand.New(rand.NewSource(3))
	ups := equivStream(rnd, 400)
	if err := seq.Apply(ups); err != nil {
		t.Fatal(err)
	}
	if err := par.Apply(ups); err != nil {
		t.Fatal(err)
	}
	if s, p := snapshotState(t, seq), snapshotState(t, par); s != p {
		t.Fatalf("categorical state diverged:\n%s\nvs\n%s", s, p)
	}
	// The relational payloads must still compare equal structurally.
	sp := seq.(*fivm.Analysis).Payload()
	pp := par.(*fivm.Analysis).Payload()
	if !sp.Equal(pp) {
		t.Fatal("RelCovar payloads differ structurally")
	}
}

package fivm_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/fivm"
	"repro/internal/relation"
	"repro/internal/value"
	"repro/internal/view"
)

// engineState renders every view, source, and the result of an engine's
// tree deterministically: sorted tuples, canonical payload rendering.
// Two engines with bit-identical maintained state render identically.
func engineState[V any](e *fivm.Engine[V]) string {
	var b strings.Builder
	var walk func(n *view.Node[V])
	walk = func(n *view.Node[V]) {
		fmt.Fprintf(&b, "view %s = %s\n", n.Var(), n.View())
		for _, c := range n.Children() {
			walk(c)
		}
	}
	tr := e.Tree()
	for _, r := range tr.Roots() {
		walk(r)
	}
	for _, name := range tr.RelationNames() {
		src, _ := tr.Source(name)
		fmt.Fprintf(&b, "source %s = %s\n", name, src)
	}
	fmt.Fprintf(&b, "result = %s\n", e.Result())
	return b.String()
}

// snapshotState dispatches engineState over the six concrete kinds.
func snapshotState(t *testing.T, e fivm.AnyEngine) string {
	t.Helper()
	switch x := e.(type) {
	case *fivm.Analysis:
		return engineState(x.Engine)
	case *fivm.CountEngine:
		return engineState(x.Engine)
	case *fivm.FloatEngine:
		return engineState(x.Engine)
	case *fivm.CovarEngine:
		return engineState(x.Engine)
	case *fivm.RangedCovarEngine:
		return engineState(x.Engine)
	case *fivm.JoinEngine:
		return engineState(x.Engine)
	default:
		t.Fatalf("unknown engine type %T", e)
		return ""
	}
}

// indexStates verifies every secondary index of the engine's tree
// against its primary map and returns the built indexes' deterministic
// postings dumps, keyed by map (deterministic walk order) and
// projection. Laziness makes the built SET probe-dependent, so callers
// compare dumps per projection present on both sides; VerifyIndexes
// ties every built index — compared or not — to primary contents that
// engineState already asserts bit-identical.
func indexStates[V any](t *testing.T, e *fivm.Engine[V]) map[string]map[string]string {
	t.Helper()
	out := map[string]map[string]string{}
	check := func(name string, m *relation.Map[V]) {
		if err := m.VerifyIndexes(); err != nil {
			t.Fatalf("%s: inconsistent index: %v", name, err)
		}
		if d := m.IndexDumps(); len(d) > 0 {
			out[name] = d
		}
	}
	var walk func(prefix string, n *view.Node[V])
	walk = func(prefix string, n *view.Node[V]) {
		check(prefix+"/view "+n.Var(), n.View())
		for i, c := range n.Children() {
			walk(fmt.Sprintf("%s/%d", prefix, i), c)
		}
	}
	tr := e.Tree()
	for i, r := range tr.Roots() {
		walk(fmt.Sprintf("root%d", i), r)
	}
	for _, name := range tr.RelationNames() {
		src, _ := tr.Source(name)
		check("source "+name, src)
	}
	check("result", tr.Result())
	return out
}

// snapshotIndexes dispatches indexStates over the six concrete kinds.
func snapshotIndexes(t *testing.T, e fivm.AnyEngine) map[string]map[string]string {
	t.Helper()
	switch x := e.(type) {
	case *fivm.Analysis:
		return indexStates(t, x.Engine)
	case *fivm.CountEngine:
		return indexStates(t, x.Engine)
	case *fivm.FloatEngine:
		return indexStates(t, x.Engine)
	case *fivm.CovarEngine:
		return indexStates(t, x.Engine)
	case *fivm.RangedCovarEngine:
		return indexStates(t, x.Engine)
	case *fivm.JoinEngine:
		return indexStates(t, x.Engine)
	default:
		t.Fatalf("unknown engine type %T", e)
		return nil
	}
}

// compareIndexes asserts bit-identical postings for every index built
// on BOTH engines (same map, same projection) and returns how many
// index pairs it compared, so callers can reject a vacuous run.
func compareIndexes(t *testing.T, base, other map[string]map[string]string, ctx string) int {
	t.Helper()
	n := 0
	for name, bd := range base {
		od, ok := other[name]
		if !ok {
			continue
		}
		for proj, dump := range bd {
			odump, ok := od[proj]
			if !ok {
				continue
			}
			n++
			if dump != odump {
				t.Fatalf("%s: index postings diverged on %s proj %s:\n%s\nvs\n%s", ctx, name, proj, dump, odump)
			}
		}
	}
	return n
}

// forceParallel drops the view layer's batch-size threshold to 1 so the
// test's modest batches exercise the parallel path.
func forceParallel(t *testing.T, e fivm.AnyEngine, workers int) {
	t.Helper()
	switch x := e.(type) {
	case *fivm.Analysis:
		x.Tree().SetParallelism(workers, 1)
	case *fivm.CountEngine:
		x.Tree().SetParallelism(workers, 1)
	case *fivm.FloatEngine:
		x.Tree().SetParallelism(workers, 1)
	case *fivm.CovarEngine:
		x.Tree().SetParallelism(workers, 1)
	case *fivm.RangedCovarEngine:
		x.Tree().SetParallelism(workers, 1)
	case *fivm.JoinEngine:
		x.Tree().SetParallelism(workers, 1)
	default:
		t.Fatalf("unknown engine type %T", e)
	}
}

func equivRelations() []fivm.RelationSpec {
	return []fivm.RelationSpec{
		{Name: "R", Attrs: []string{"A", "B"}},
		{Name: "S", Attrs: []string{"B", "C"}},
		{Name: "T", Attrs: []string{"C", "D"}},
	}
}

// equivStreamDomain builds a mixed insert/delete stream over the
// relations with integer values in [0, domain) (so every float sum is
// exact and "identical" means bit-identical). Deletes target live
// tuples, so payloads cancel to zero mid-stream. The domain bounds the
// distinct-tuple space: tests that must push coalesced per-relation
// deltas past DefaultParallelThreshold need a domain whose tuple space
// clears it (domain² distinct tuples per relation).
func equivStreamDomain(rnd *rand.Rand, n, domain int) []view.Update {
	rels := equivRelations()
	live := map[string][]value.Tuple{}
	var ups []view.Update
	for len(ups) < n {
		r := rels[rnd.Intn(len(rels))]
		if l := live[r.Name]; len(l) > 0 && rnd.Float64() < 0.35 {
			i := rnd.Intn(len(l))
			ups = append(ups, view.Update{Rel: r.Name, Tuple: l[i], Mult: -1})
			live[r.Name] = append(l[:i], l[i+1:]...)
			continue
		}
		tp := make(value.Tuple, len(r.Attrs))
		for i := range tp {
			tp[i] = value.Int(int64(rnd.Intn(domain)))
		}
		ups = append(ups, view.Update{Rel: r.Name, Tuple: tp, Mult: 1})
		live[r.Name] = append(live[r.Name], tp)
	}
	return ups
}

// equivStream is equivStreamDomain over the dense 5-value domain most
// equivalence tests use.
func equivStream(rnd *rand.Rand, n int) []view.Update {
	return equivStreamDomain(rnd, n, 5)
}

// setWorkers configures worker count with the DEFAULT batch-size
// threshold (view.DefaultParallelThreshold), unlike forceParallel,
// so small batches stay sequential and only large ones fan out.
func setWorkers(t *testing.T, e fivm.AnyEngine, workers int) {
	t.Helper()
	s, ok := e.(interface{ SetParallelism(int) })
	if !ok {
		t.Fatalf("engine %T does not expose SetParallelism", e)
	}
	s.SetParallelism(workers)
}

// TestParallelEquivalenceAllKinds is the correctness anchor of parallel
// delta propagation: for every engine kind, engines at worker counts
// {0 (untouched default), 1, 2, 4, 8} driven through the same
// randomized mixed insert/delete stream must hold bit-identical views,
// sources, results, index postings, and published models after every
// batch. Batch sizes straddle view.DefaultParallelThreshold (128), so
// each configured engine keeps crossing between the sequential and
// parallel commit paths mid-stream.
func TestParallelEquivalenceAllKinds(t *testing.T) {
	configs := map[fivm.Kind]fivm.Config{
		fivm.KindCount: {
			Relations: equivRelations(),
			Query:     "SELECT B, SUM(1) FROM R NATURAL JOIN S NATURAL JOIN T GROUP BY B",
		},
		fivm.KindFloat: {
			Relations: equivRelations(),
			Query:     "SELECT SUM(A * D) FROM R NATURAL JOIN S NATURAL JOIN T",
		},
		fivm.KindCovar: {
			Relations: equivRelations(),
			Attrs:     []string{"A", "B", "D"},
		},
		fivm.KindRangedCovar: {
			Relations: equivRelations(),
			Kind:      fivm.KindRangedCovar,
			Attrs:     []string{"A", "B", "D"},
		},
		fivm.KindAnalysis: {
			Relations: equivRelations(),
			Features: []fivm.FeatureSpec{
				{Attr: "A"},
				{Attr: "B", Categorical: true},
				{Attr: "D"},
			},
		},
		fivm.KindJoin: {
			Relations: equivRelations(),
		},
	}
	// Workers 0 = engine exactly as Open returned it (the baseline the
	// others must match); the rest route large batches through 1, 2, 4,
	// or 8 commit workers at the default threshold.
	workerCounts := []int{0, 1, 2, 4, 8}
	// The cycle mixes batches well below and well above the 128-tuple
	// threshold: a 1200-update batch leaves ~400 coalesced tuples per
	// relation (domain 30 → 900-tuple space per relation clears it),
	// while 90- and 64-update batches stay sequential on every engine.
	batchSizes := []int{90, 1200, 130, 64, 700, 96, 400}
	for kind, cfg := range configs {
		t.Run(string(kind), func(t *testing.T) {
			engines := make([]fivm.AnyEngine, len(workerCounts))
			for i, w := range workerCounts {
				e, err := fivm.Open(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got := e.Kind(); got != kind {
					t.Fatalf("Open built a %s engine, want %s", got, kind)
				}
				if w > 0 {
					setWorkers(t, e, w)
				}
				engines[i] = e
			}

			rnd := rand.New(rand.NewSource(99))
			init := map[string][]value.Tuple{}
			for _, r := range equivRelations() {
				for i := 0; i < 60; i++ {
					tp := make(value.Tuple, len(r.Attrs))
					for j := range tp {
						tp[j] = value.Int(int64(rnd.Intn(30)))
					}
					init[r.Name] = append(init[r.Name], tp)
				}
			}
			for _, e := range engines {
				if err := e.Init(init); err != nil {
					t.Fatal(err)
				}
			}

			ups := equivStreamDomain(rnd, 2800, 30)
			comparedIndexes := 0
			start, bi := 0, 0
			for start < len(ups) {
				end := start + batchSizes[bi%len(batchSizes)]
				bi++
				if end > len(ups) {
					end = len(ups)
				}
				for _, e := range engines {
					if err := e.Apply(ups[start:end]); err != nil {
						t.Fatal(err)
					}
				}
				base := snapshotState(t, engines[0])
				baseIx := snapshotIndexes(t, engines[0])
				for i, e := range engines[1:] {
					if got := snapshotState(t, e); got != base {
						t.Fatalf("state diverged after batch ending at %d (workers %d):\nbaseline:\n%s\nvs:\n%s",
							end, workerCounts[i+1], base, got)
					}
					comparedIndexes += compareIndexes(t, baseIx, snapshotIndexes(t, e),
						fmt.Sprintf("batch ending at %d, workers %d", end, workerCounts[i+1]))
				}
				start = end
			}
			if comparedIndexes == 0 {
				t.Fatal("no index postings were compared; the equivalence check is vacuous")
			}

			// Published models must agree too (the analysis ridge fit is
			// iterative float math, deterministic given identical payloads).
			bj, berr := engines[0].PublishModel(nil).ResultJSON()
			for i, e := range engines[1:] {
				ej, eerr := e.PublishModel(nil).ResultJSON()
				if (berr == nil) != (eerr == nil) {
					t.Fatalf("model render: baseline err %v, workers %d err %v", berr, workerCounts[i+1], eerr)
				}
				if berr != nil {
					continue
				}
				bb, _ := json.Marshal(bj)
				eb, _ := json.Marshal(ej)
				if string(bb) != string(eb) {
					t.Fatalf("published models diverged (workers %d):\n%s\nvs\n%s", workerCounts[i+1], bb, eb)
				}
			}
		})
	}
}

// TestOpenWorkers: Config.Workers wires through Open into the view
// tree; 0 leaves the sequential default.
func TestOpenWorkers(t *testing.T) {
	mk := func(workers int) *fivm.CountEngine {
		eng, err := fivm.Open(fivm.Config{
			Relations: equivRelations(),
			Query:     "SELECT SUM(1) FROM R NATURAL JOIN S NATURAL JOIN T",
			Workers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng.(*fivm.CountEngine)
	}
	if w, _ := mk(0).Tree().Parallelism(); w != 1 {
		t.Fatalf("Workers 0: tree has %d workers, want sequential", w)
	}
	if w, _ := mk(4).Tree().Parallelism(); w != 4 {
		t.Fatalf("Workers 4: tree has %d workers", w)
	}
	if w, _ := mk(-1).Tree().Parallelism(); w < 1 {
		t.Fatalf("Workers -1 (GOMAXPROCS): tree has %d workers", w)
	}
	// SetParallelism(1) restores the sequential path on a live engine.
	e := mk(8)
	e.SetParallelism(1)
	if w, _ := e.Tree().Parallelism(); w != 1 {
		t.Fatalf("SetParallelism(1): tree has %d workers", w)
	}
}

// TestParallelEquivalenceCategorical drives the relational-ring payloads
// (categorical one-hot tensors) through the parallel path with a larger
// worker count than GOMAXPROCS, checking the pool degrades gracefully.
func TestParallelEquivalenceCategorical(t *testing.T) {
	cfg := fivm.Config{
		Relations: equivRelations(),
		Features: []fivm.FeatureSpec{
			{Attr: "A", Categorical: true},
			{Attr: "C", Categorical: true},
			{Attr: "D", BinWidth: 2},
		},
	}
	seq, err := fivm.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := fivm.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	forceParallel(t, par, 16)
	rnd := rand.New(rand.NewSource(3))
	ups := equivStream(rnd, 400)
	if err := seq.Apply(ups); err != nil {
		t.Fatal(err)
	}
	if err := par.Apply(ups); err != nil {
		t.Fatal(err)
	}
	if s, p := snapshotState(t, seq), snapshotState(t, par); s != p {
		t.Fatalf("categorical state diverged:\n%s\nvs\n%s", s, p)
	}
	// The relational payloads must still compare equal structurally.
	sp := seq.(*fivm.Analysis).Payload()
	pp := par.(*fivm.Analysis).Payload()
	if !sp.Equal(pp) {
		t.Fatal("RelCovar payloads differ structurally")
	}
}

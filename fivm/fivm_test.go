package fivm_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/fivm"
	"repro/internal/ml"
	"repro/internal/value"
	"repro/internal/view"
)

func toyConfig() fivm.AnalysisConfig {
	return fivm.AnalysisConfig{
		Relations: []fivm.RelationSpec{
			{Name: "R", Attrs: []string{"A", "B"}},
			{Name: "S", Attrs: []string{"A", "C", "D"}},
		},
		Features: []fivm.FeatureSpec{
			{Attr: "B"},
			{Attr: "C", Categorical: true},
			{Attr: "D"},
		},
	}
}

func toyData() map[string][]value.Tuple {
	return map[string][]value.Tuple{
		"R": {value.T("a1", 1), value.T("a2", 2)},
		"S": {value.T("a1", 1, 1), value.T("a1", 2, 3), value.T("a2", 2, 2)},
	}
}

func TestAnalysisEndToEnd(t *testing.T) {
	an, err := fivm.NewAnalysis(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Init(toyData()); err != nil {
		t.Fatal(err)
	}
	p := an.Payload()
	if p == nil || p.Count().Scalar() != 3 {
		t.Fatalf("payload count = %v", p)
	}
	sigma, err := an.Covar()
	if err != nil {
		t.Fatal(err)
	}
	// Columns: B, C=1, C=2, D.
	if sigma.Dim() != 4 {
		t.Fatalf("sigma dim = %d", sigma.Dim())
	}
	if sigma.Count != 3 {
		t.Errorf("sigma count = %v", sigma.Count)
	}
	ib := sigma.ColumnsOf("B")[0]
	id := sigma.ColumnsOf("D")[0]
	if sigma.Sum[ib] != 4 || sigma.Sum[id] != 6 {
		t.Errorf("sums = %v, %v", sigma.Sum[ib], sigma.Sum[id])
	}
	if sigma.At(ib, id) != 8 {
		t.Errorf("Q(B,D) = %v, want 8", sigma.At(ib, id))
	}

	// Maintenance through the facade.
	if err := an.Apply([]view.Update{{Rel: "R", Tuple: value.T("a1", 1), Mult: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := an.Payload().Count().Scalar(); got != 5 {
		t.Errorf("count after insert = %v, want 5", got)
	}
	if err := an.Apply([]view.Update{{Rel: "R", Tuple: value.T("a1", 1), Mult: -1}}); err != nil {
		t.Fatal(err)
	}
	if got := an.Payload().Count().Scalar(); got != 3 {
		t.Errorf("count after delete = %v, want 3", got)
	}
	if an.Stats().Updates == 0 {
		t.Error("stats not accumulating")
	}
	if len(an.Features()) != 3 {
		t.Error("features accessor")
	}
	if an.Tree() == nil {
		t.Error("tree accessor")
	}
}

func TestAnalysisRidge(t *testing.T) {
	an, err := fivm.NewAnalysis(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Init(toyData()); err != nil {
		t.Fatal(err)
	}
	model, sigma, err := an.Ridge("D", nil, ml.DefaultRidgeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if model == nil || sigma == nil {
		t.Fatal("nil results")
	}
	// Warm-start path reuses the model.
	model2, _, err := an.Ridge("D", model, ml.DefaultRidgeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if model2 != model {
		t.Error("warm start rebuilt the model despite stable columns")
	}
	// A categorical label must be rejected.
	if _, _, err := an.Ridge("C", nil, ml.DefaultRidgeConfig()); err == nil {
		t.Error("categorical label accepted")
	}
}

func TestAnalysisMIAndApps(t *testing.T) {
	cfg := toyConfig()
	cfg.Features = []fivm.FeatureSpec{
		{Attr: "B", Categorical: true},
		{Attr: "C", Categorical: true},
		{Attr: "D", Categorical: true},
	}
	an, err := fivm.NewAnalysis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Init(toyData()); err != nil {
		t.Fatal(err)
	}
	mi, err := an.MI()
	if err != nil {
		t.Fatal(err)
	}
	if mi.Dim() != 3 {
		t.Fatalf("MI dim = %d", mi.Dim())
	}
	// On the toy join, B and C are strongly dependent (both determined
	// by A up to one collision).
	if mi.At(0, 1) <= 0 {
		t.Errorf("I(B,C) = %v, want > 0", mi.At(0, 1))
	}
	ranking, _, err := an.SelectFeatures("D", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranking) != 2 {
		t.Errorf("ranking = %v", ranking)
	}
	tree, err := an.ChowLiu("B")
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root != "B" || len(tree.Edges) != 2 {
		t.Errorf("tree = %+v", tree)
	}
}

func TestAnalysisMIRejectsContinuous(t *testing.T) {
	an, err := fivm.NewAnalysis(toyConfig()) // B and D continuous
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Init(toyData()); err != nil {
		t.Fatal(err)
	}
	if _, err := an.MI(); err == nil {
		t.Error("MI over continuous features accepted")
	}
}

func TestAnalysisConfigErrors(t *testing.T) {
	base := toyConfig()

	c := base
	c.Features = nil
	if _, err := fivm.NewAnalysis(c); err == nil {
		t.Error("no features accepted")
	}

	c = base
	c.Relations = nil
	if _, err := fivm.NewAnalysis(c); err == nil {
		t.Error("no relations accepted")
	}

	c = base
	c.Features = []fivm.FeatureSpec{{Attr: "Z"}}
	if _, err := fivm.NewAnalysis(c); err == nil {
		t.Error("unknown feature accepted")
	}

	c = base
	c.Features = []fivm.FeatureSpec{{Attr: "B"}, {Attr: "B"}}
	if _, err := fivm.NewAnalysis(c); err == nil {
		t.Error("duplicate feature accepted")
	}
}

func TestAnalysisM3Rendering(t *testing.T) {
	an, err := fivm.NewAnalysis(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	vt := an.ViewTree()
	if !strings.Contains(vt, "V@A[]") {
		t.Errorf("ViewTree missing root:\n%s", vt)
	}
	code := an.M3()
	for _, frag := range []string{"DECLARE MAP", "RingCofactor<double, 3>", "[lift<0>"} {
		if !strings.Contains(code, frag) {
			t.Errorf("M3 missing %q:\n%s", frag, code)
		}
	}
}

func TestCountEngine(t *testing.T) {
	cat := fivm.NewCatalog()
	if err := cat.AddRelation("R", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRelation("S", "A", "C", "D"); err != nil {
		t.Fatal(err)
	}
	q, err := fivm.Parse(cat, "SELECT SUM(1) FROM R NATURAL JOIN S")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := fivm.NewCountEngine(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Init(toyData()); err != nil {
		t.Fatal(err)
	}
	if got := eng.Payload(); got != 3 {
		t.Errorf("count = %d", got)
	}

	// Grouped count.
	qg, err := fivm.Parse(cat, "SELECT A, SUM(1) FROM R NATURAL JOIN S GROUP BY A")
	if err != nil {
		t.Fatal(err)
	}
	engG, err := fivm.NewCountEngine(qg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := engG.Init(toyData()); err != nil {
		t.Fatal(err)
	}
	if got, _ := engG.Result().Get(value.T("a1")); got != 2 {
		t.Errorf("count(a1) = %d", got)
	}

	// Rejections.
	qb, _ := fivm.Parse(cat, "SELECT SUM(B) FROM R")
	if _, err := fivm.NewCountEngine(qb, nil); err == nil {
		t.Error("non-count query accepted by count engine")
	}
}

func TestFloatEngine(t *testing.T) {
	cat := fivm.NewCatalog()
	if err := cat.AddRelation("R", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRelation("S", "A", "C", "D"); err != nil {
		t.Fatal(err)
	}
	q, err := fivm.Parse(cat, "SELECT SUM(B * D) FROM R NATURAL JOIN S")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := fivm.NewFloatEngine(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Init(toyData()); err != nil {
		t.Fatal(err)
	}
	// SUM(B*D) over {(1,_,1),(1,_,3),(2,_,2)} = 1+3+4 = 8.
	if got := eng.Payload(); got != 8 {
		t.Errorf("SUM(B*D) = %v, want 8", got)
	}

	// sq() factor function.
	q2, _ := fivm.Parse(cat, "SELECT SUM(sq(D)) FROM S")
	eng2, err := fivm.NewFloatEngine(q2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Init(map[string][]value.Tuple{"S": toyData()["S"]}); err != nil {
		t.Fatal(err)
	}
	if got := eng2.Payload(); got != 14 { // 1+9+4
		t.Errorf("SUM(D*D) = %v, want 14", got)
	}

	// Constant scaling folds into a lift.
	q3, _ := fivm.Parse(cat, "SELECT SUM(2 * D) FROM S")
	eng3, err := fivm.NewFloatEngine(q3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng3.Init(map[string][]value.Tuple{"S": toyData()["S"]}); err != nil {
		t.Fatal(err)
	}
	if got := eng3.Payload(); got != 12 {
		t.Errorf("SUM(2*D) = %v, want 12", got)
	}

	// Duplicate attribute factors are rejected with guidance.
	qd, _ := fivm.Parse(cat, "SELECT SUM(D * D) FROM S")
	if _, err := fivm.NewFloatEngine(qd, nil); err == nil {
		t.Error("SUM(D*D) accepted; must demand sq(D)")
	}
	// Unknown function.
	qf, _ := fivm.Parse(cat, "SELECT SUM(cube(D)) FROM S")
	if _, err := fivm.NewFloatEngine(qf, nil); err == nil {
		t.Error("unknown factor function accepted")
	}
}

func TestCovarEngineFacade(t *testing.T) {
	rels := []fivm.RelationSpec{
		{Name: "R", Attrs: []string{"A", "B"}},
		{Name: "S", Attrs: []string{"A", "C", "D"}},
	}
	eng, err := fivm.NewCovarEngine(rels, []string{"B", "D"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Init(toyData()); err != nil {
		t.Fatal(err)
	}
	p := eng.Payload()
	if p.Count() != 3 || p.Sum(0) != 4 || p.Sum(1) != 6 {
		t.Errorf("payload = %v", p)
	}
	if math.Abs(p.Prod(0, 1)-8) > 1e-12 {
		t.Errorf("Q(B,D) = %v", p.Prod(0, 1))
	}
	// Errors.
	if _, err := fivm.NewCovarEngine(rels, nil, nil); err == nil {
		t.Error("empty aggregate set accepted")
	}
	if _, err := fivm.NewCovarEngine(rels, []string{"Z"}, nil); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := fivm.NewCovarEngine(rels, []string{"B", "B"}, nil); err == nil {
		t.Error("duplicate attribute accepted")
	}
}

func TestAnalysisSnapshotRoundTrip(t *testing.T) {
	an, err := fivm.NewAnalysis(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Init(toyData()); err != nil {
		t.Fatal(err)
	}
	if err := an.Apply([]view.Update{{Rel: "R", Tuple: value.T("a3", 7), Mult: 1}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := an.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := fivm.NewAnalysis(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if !restored.Payload().Equal(an.Payload()) {
		t.Errorf("restored payload %v != original %v", restored.Payload(), an.Payload())
	}
	// Restored engines keep maintaining in lockstep.
	up := []view.Update{{Rel: "S", Tuple: value.T("a3", 9, 9), Mult: 1}}
	if err := an.Apply(up); err != nil {
		t.Fatal(err)
	}
	if err := restored.Apply(up); err != nil {
		t.Fatal(err)
	}
	if !restored.Payload().Equal(an.Payload()) {
		t.Error("restored engine diverged after further updates")
	}
}

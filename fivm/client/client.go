// Package client is the Go client for the fivm v1 HTTP API — the one
// HTTP client implementation in the tree, consumed by the cluster
// router's shard calls, the fivm-bench load generator, and the serving
// example alike. It speaks the versioned /v1/ routes, decodes the
// uniform error envelope ({"error","code","retry_after_ms"}) into
// *APIError, and retries with backoff honoring the server's Retry-After
// hint.
//
// Every Update call is stamped with a batch ID (the X-Fivm-Batch-Id
// header: the client's random 128-bit origin plus a per-client
// sequence number), which makes the request idempotent server-side —
// the server's dedup table answers a redelivered ID with the original
// ack instead of applying the batch again. That is what lets the retry
// loop safely retry transport failures and 503s, where the first
// delivery may or may not have been applied: 429s were shed before
// enqueueing and are always retried, while transport errors and 503s
// are retried only for idempotent requests (GETs, or identified
// updates).
package client

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// BatchIDHeader carries the idempotency batch ID on POST /v1/update.
const BatchIDHeader = "X-Fivm-Batch-Id"

// Update is the wire form of one tuple update. Tuple elements must be
// JSON scalars (numbers, strings, nil); Mult nil means 1 (insert),
// negative deletes.
type Update struct {
	Rel   string `json:"rel"`
	Tuple []any  `json:"tuple"`
	Mult  *int   `json:"mult,omitempty"`
}

// NewUpdate builds one update; mult 1 is left implicit on the wire.
func NewUpdate(rel string, mult int, tuple ...any) Update {
	u := Update{Rel: rel, Tuple: tuple}
	if mult != 1 {
		u.Mult = &mult
	}
	return u
}

// UpdateAck is the response to a POST /v1/update: how many updates the
// server admitted, whether they were already applied when the response
// was written (wait=true), and how many were recognized as duplicates
// of an earlier delivery of the same batch ID (suppressed, not
// re-applied; Deduped == Accepted means the whole batch was a replay).
type UpdateAck struct {
	Accepted int  `json:"accepted"`
	Applied  bool `json:"applied"`
	Deduped  int  `json:"deduped"`
}

// Model is a decoded GET /v1/model response: the engine-specific body
// with the common fields lifted out.
type Model struct {
	Kind    string
	Version uint64
	// Body is the full response object, including the kind-specific
	// result rendering.
	Body map[string]any
}

// Partial is a GET /v1/partial response: the shard's result relation in
// the binary partial format, plus the cumulative applied-update counter
// the body covers (the X-Fivm-Applied header).
type Partial struct {
	Data    []byte
	Applied uint64
}

// Stats is the typed subset of GET /v1/stats that programmatic callers
// consume; Raw carries the full body.
type Stats struct {
	Kind     string                     `json:"kind"`
	Ingested uint64                     `json:"ingested"`
	Applied  uint64                     `json:"applied"`
	Shed     uint64                     `json:"shed"`
	Batches  uint64                     `json:"batches"`
	Shards   map[string]ShardStatus     `json:"shards"`
	WAL      WALStatus                  `json:"wal"`
	Raw      map[string]json.RawMessage `json:"-"`
}

// ShardStatus describes one ingest shard (per input relation).
type ShardStatus struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
	Arity    int `json:"arity"`
}

// WALStatus mirrors the server's durability status block.
type WALStatus struct {
	Enabled          bool   `json:"enabled"`
	Crashed          bool   `json:"crashed"`
	AppendedBatches  uint64 `json:"appended_batches"`
	AppendedBytes    uint64 `json:"appended_bytes"`
	Segments         int    `json:"segments"`
	CheckpointSeq    uint64 `json:"checkpoint_seq"`
	RecoveredUpdates uint64 `json:"recovered_updates"`
	AppliedUpdates   uint64 `json:"applied_updates"`
}

// Health is a decoded GET /v1/healthz response.
type Health struct {
	OK   bool `json:"ok"`
	Body map[string]any
}

// APIError is a non-2xx response decoded from the v1 error envelope
// (legacy single-field {"error"} bodies decode too, with an empty
// Code).
type APIError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("fivm: server returned %d (%s): %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("fivm: server returned %d: %s", e.Status, e.Message)
}

// Temporary reports whether retrying the request later can succeed
// (backpressure or a shard restarting).
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// ModelReader is the read-side surface of the v1 API; *Client
// implements it. Code that only renders models can depend on this
// instead of the full client.
type ModelReader interface {
	Model(ctx context.Context) (*Model, error)
	Predict(ctx context.Context, features map[string]string) (float64, error)
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries bounds how many times a retryable failure — a 429, or a
// transport error or 503 on an idempotent request — is retried before
// surfacing; 0 disables retrying (load generators keep their own shed
// accounting, and the cluster router owns its own per-shard policy).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base and maximum retry delay. The server's
// Retry-After hint is honored when present but clamped to max.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.backoff, c.maxBackoff = base, max }
}

// Client talks to one fivm-serve worker or fivm-cluster router. It is
// safe for concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	retries    int
	backoff    time.Duration
	maxBackoff time.Duration
	// origin is this client instance's random 128-bit identity; origin
	// plus the batchSeq counter forms each Update call's batch ID.
	origin   [16]byte
	batchSeq atomic.Uint64
}

var _ ModelReader = (*Client)(nil)

// New builds a client for the server at base (e.g.
// "http://127.0.0.1:8344"). Defaults: the shared http.DefaultClient, 3
// retries, 100ms base / 2s max backoff.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(base, "/"),
		hc:         http.DefaultClient,
		retries:    3,
		backoff:    100 * time.Millisecond,
		maxBackoff: 2 * time.Second,
	}
	_, _ = crand.Read(c.origin[:]) // never fails on supported platforms
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the server URL the client was built for.
func (c *Client) Base() string { return c.base }

// Update posts one batch of updates, stamped with a fresh batch ID so
// the server can deduplicate redeliveries — every retry of this call
// (transport failure, 503, 429) resends the identical body under the
// identical ID, which is exactly the contract the server's dedup table
// requires. wait=true blocks until the batch is applied and a model
// snapshot reflecting it is published — after a wait-acknowledged
// batch, any read (on this worker, or merged through a router tracking
// acks) observes it.
func (c *Client) Update(ctx context.Context, ups []Update, wait bool) (*UpdateAck, error) {
	return c.UpdateWithID(ctx, c.NextBatchID(), ups, wait)
}

// NextBatchID mints the next batch ID in this client's sequence (its
// random origin, a dash, a strictly increasing decimal counter). Use
// it with UpdateWithID to retry one batch across calls — or across
// clients — under one identity.
func (c *Client) NextBatchID() string {
	return hex.EncodeToString(c.origin[:]) + "-" + strconv.FormatUint(c.batchSeq.Add(1), 10)
}

// UpdateWithID is Update under an explicit batch ID (the cluster
// router forwards the client's incoming ID to every shard this way).
// An empty batchID sends an unidentified — non-idempotent, never
// retried on 503 or transport failure — request.
func (c *Client) UpdateWithID(ctx context.Context, batchID string, ups []Update, wait bool) (*UpdateAck, error) {
	body, err := json.Marshal(map[string]any{"updates": ups})
	if err != nil {
		return nil, err
	}
	path := "/v1/update"
	if wait {
		path += "?wait=1"
	}
	resp, err := c.doID(ctx, http.MethodPost, path, body, batchID)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var ack UpdateAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return nil, fmt.Errorf("fivm: decoding %s response: %w", path, err)
	}
	return &ack, nil
}

// Model fetches the published model.
func (c *Client) Model(ctx context.Context) (*Model, error) {
	var raw map[string]any
	if err := c.doJSON(ctx, http.MethodGet, "/v1/model", nil, &raw); err != nil {
		return nil, err
	}
	m := &Model{Body: raw}
	if k, ok := raw["kind"].(string); ok {
		m.Kind = k
	}
	if v, ok := raw["version"].(float64); ok {
		m.Version = uint64(v)
	}
	return m, nil
}

// Predict evaluates the served predictor on one feature vector, one
// query parameter per feature.
func (c *Client) Predict(ctx context.Context, features map[string]string) (float64, error) {
	q := url.Values{}
	for k, v := range features {
		q.Set(k, v)
	}
	var out struct {
		Prediction float64 `json:"prediction"`
	}
	if err := c.doJSON(ctx, http.MethodGet, "/v1/predict?"+q.Encode(), nil, &out); err != nil {
		return 0, err
	}
	return out.Prediction, nil
}

// Stats fetches serving counters. The typed fields cover the
// programmatic consumers; Raw has everything.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var st Stats
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("fivm: decoding /v1/stats: %w", err)
	}
	if err := json.Unmarshal(data, &st.Raw); err != nil {
		return nil, fmt.Errorf("fivm: decoding /v1/stats: %w", err)
	}
	return &st, nil
}

// Partial fetches the worker's partial result relation for cross-shard
// merging.
func (c *Client) Partial(ctx context.Context) (*Partial, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/partial", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	applied, _ := strconv.ParseUint(resp.Header.Get("X-Fivm-Applied"), 10, 64)
	return &Partial{Data: data, Applied: applied}, nil
}

// Healthz probes liveness. A 503 with a well-formed body is a healthy
// transport answer about an unhealthy server: it returns OK=false and
// no error.
func (c *Client) Healthz(ctx context.Context) (*Health, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/healthz", nil)
	if err != nil {
		var ae *APIError
		// The healthz body itself says ok=false on 503; surface that as
		// data, not failure, so health aggregators distinguish "down"
		// from "unhealthy".
		if errors.As(err, &ae) && ae.Status == http.StatusServiceUnavailable {
			return &Health{OK: false, Body: map[string]any{"error": ae.Message}}, nil
		}
		return nil, err
	}
	defer resp.Body.Close()
	var h Health
	body := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("fivm: decoding /v1/healthz: %w", err)
	}
	h.Body = body
	h.OK, _ = body["ok"].(bool)
	return &h, nil
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.do(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// doJSON performs a request and decodes a JSON response body into out.
func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, out any) error {
	resp, err := c.do(ctx, method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("fivm: decoding %s response: %w", path, err)
	}
	return nil
}

// do performs one request with the retry loop (see doID).
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	return c.doID(ctx, method, path, body, "")
}

// doID performs one request with the retry loop, stamping batchID on
// it when non-empty. Non-2xx responses are decoded into *APIError.
// What retries depends on what a redelivery can do:
//
//   - 429: always retried — the server shed the batch before
//     enqueueing, so the retry cannot double-apply.
//   - Transport errors and 503s: retried only for idempotent requests
//     (GETs, and updates identified by a batch ID, which the server
//     deduplicates). An unidentified POST that failed mid-flight may
//     or may not have been applied; retrying it could double-apply,
//     so the error surfaces instead.
//
// Backoff doubles from the configured base, clamped to the maximum;
// a server Retry-After hint (header or envelope) overrides the
// computed delay for that attempt, clamped the same way.
func (c *Client) doID(ctx context.Context, method, path string, body []byte, batchID string) (*http.Response, error) {
	idempotent := method == http.MethodGet || batchID != ""
	delay := c.backoff
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if batchID != "" {
			req.Header.Set(BatchIDHeader, batchID)
		}
		wait := delay
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if !idempotent || attempt >= c.retries {
				return nil, err
			}
		} else {
			if resp.StatusCode/100 == 2 {
				return resp, nil
			}
			apiErr := decodeAPIError(resp)
			resp.Body.Close()
			retryable := apiErr.Status == http.StatusTooManyRequests ||
				(idempotent && apiErr.Status == http.StatusServiceUnavailable)
			if !retryable || attempt >= c.retries {
				return nil, apiErr
			}
			if apiErr.RetryAfter > 0 {
				wait = apiErr.RetryAfter
			}
		}
		if wait > c.maxBackoff {
			wait = c.maxBackoff
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		delay *= 2
		if delay > c.maxBackoff {
			delay = c.maxBackoff
		}
	}
}

// decodeAPIError unwraps an error response: the v1 envelope when
// present, the legacy {"error"} shape, or the raw body as a last
// resort. The Retry-After header — integer seconds or an HTTP-date,
// both allowed by RFC 9110 — and the envelope's retry_after_ms both
// feed RetryAfter (the envelope wins on conflict — it has millisecond
// resolution). Non-positive hints in either form are ignored: a
// negative or past-dated Retry-After must not turn into a zero-wait
// hot retry loop.
func decodeAPIError(resp *http.Response) *APIError {
	ae := &APIError{Status: resp.StatusCode}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil {
			if secs > 0 {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		} else if t, terr := http.ParseTime(s); terr == nil {
			if d := time.Until(t); d > 0 {
				ae.RetryAfter = d
			}
		}
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env struct {
		Error        string `json:"error"`
		Code         string `json:"code"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.Unmarshal(data, &env); err == nil && env.Error != "" {
		ae.Message = env.Error
		ae.Code = env.Code
		if env.RetryAfterMS > 0 { // negative envelopes are ignored, not zero-wait
			ae.RetryAfter = time.Duration(env.RetryAfterMS) * time.Millisecond
		}
	} else {
		ae.Message = strings.TrimSpace(string(data))
	}
	return ae
}

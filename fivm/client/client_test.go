package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// scriptServer answers each request from a scripted list of responses
// (repeating the last one when the script runs out) and records what it
// saw.
type scriptServer struct {
	t      *testing.T
	script []func(w http.ResponseWriter)
	hits   atomic.Int64
	ids    []string // X-Fivm-Batch-Id per request, in order
	mu     chan struct{}
}

func newScriptServer(t *testing.T, script ...func(w http.ResponseWriter)) (*scriptServer, *httptest.Server) {
	s := &scriptServer{t: t, script: script, mu: make(chan struct{}, 1)}
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(s.hits.Add(1)) - 1
		s.mu <- struct{}{}
		s.ids = append(s.ids, r.Header.Get(BatchIDHeader))
		<-s.mu
		if n >= len(s.script) {
			n = len(s.script) - 1
		}
		s.script[n](w)
	}))
	t.Cleanup(hs.Close)
	return s, hs
}

func status(code int, body string) func(w http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_, _ = w.Write([]byte(body))
	}
}

func retryAfter(code int, header string, body string) func(w http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", header)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_, _ = w.Write([]byte(body))
	}
}

var ok202 = status(http.StatusAccepted, `{"accepted":1,"applied":true}`)

func testUpdates() []Update { return []Update{NewUpdate("R", 1, 1, 2)} }

// TestRetryMatrix drives the client retry loop against a scripted fake
// server: which failures retry, which surface, and what the caller
// sees when retries run out.
func TestRetryMatrix(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name    string
		script  []func(w http.ResponseWriter)
		opts    []Option
		send    func(c *Client) error
		wantErr func(t *testing.T, err error)
		wantN   int64 // requests the server must have seen
	}{
		{
			name:   "429 then success",
			script: []func(w http.ResponseWriter){status(429, `{"error":"shed","code":"overloaded"}`), status(429, `{"error":"shed","code":"overloaded"}`), ok202},
			opts:   []Option{WithRetries(3), WithBackoff(time.Millisecond, 10*time.Millisecond)},
			send:   func(c *Client) error { _, err := c.Update(ctx, testUpdates(), false); return err },
			wantN:  3,
		},
		{
			name:   "503 retried for identified update",
			script: []func(w http.ResponseWriter){status(503, `{"error":"restarting","code":"unavailable"}`), ok202},
			opts:   []Option{WithRetries(3), WithBackoff(time.Millisecond, 10*time.Millisecond)},
			send:   func(c *Client) error { _, err := c.Update(ctx, testUpdates(), false); return err },
			wantN:  2,
		},
		{
			name:   "503 NOT retried for unidentified update",
			script: []func(w http.ResponseWriter){status(503, `{"error":"restarting","code":"unavailable"}`), ok202},
			opts:   []Option{WithRetries(3), WithBackoff(time.Millisecond, 10*time.Millisecond)},
			send:   func(c *Client) error { _, err := c.UpdateWithID(ctx, "", testUpdates(), false); return err },
			wantErr: func(t *testing.T, err error) {
				var ae *APIError
				if !errors.As(err, &ae) || ae.Status != 503 {
					t.Fatalf("got %v, want 503 APIError", err)
				}
			},
			wantN: 1,
		},
		{
			name:   "retries exhausted surfaces APIError",
			script: []func(w http.ResponseWriter){status(429, `{"error":"shed","code":"overloaded"}`)},
			opts:   []Option{WithRetries(2), WithBackoff(time.Millisecond, 5*time.Millisecond)},
			send:   func(c *Client) error { _, err := c.Update(ctx, testUpdates(), false); return err },
			wantErr: func(t *testing.T, err error) {
				var ae *APIError
				if !errors.As(err, &ae) || ae.Status != 429 || ae.Code != "overloaded" || !ae.Temporary() {
					t.Fatalf("got %v, want temporary 429 APIError with code overloaded", err)
				}
			},
			wantN: 3, // initial + 2 retries
		},
		{
			name:   "retries disabled surfaces immediately",
			script: []func(w http.ResponseWriter){status(429, `{"error":"shed","code":"overloaded"}`)},
			opts:   []Option{WithRetries(0)},
			send:   func(c *Client) error { _, err := c.Update(ctx, testUpdates(), false); return err },
			wantErr: func(t *testing.T, err error) {
				var ae *APIError
				if !errors.As(err, &ae) {
					t.Fatalf("got %v, want APIError", err)
				}
			},
			wantN: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, hs := newScriptServer(t, tc.script...)
			c := New(hs.URL, tc.opts...)
			err := tc.send(c)
			if tc.wantErr != nil {
				tc.wantErr(t, err)
			} else if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if got := srv.hits.Load(); got != tc.wantN {
				t.Errorf("server saw %d requests, want %d", got, tc.wantN)
			}
		})
	}
}

// TestRetryAfterHonoredAndClamped checks both directions of the hint:
// a small Retry-After stretches the wait beyond the base backoff, and a
// huge one is clamped to the configured maximum.
func TestRetryAfterHonoredAndClamped(t *testing.T) {
	ctx := context.Background()

	// Honored: retry_after_ms=80 with base backoff 1ms — the retry must
	// wait at least ~80ms.
	_, hs := newScriptServer(t,
		status(429, `{"error":"shed","code":"overloaded","retry_after_ms":80}`), ok202)
	c := New(hs.URL, WithRetries(1), WithBackoff(time.Millisecond, time.Second))
	t0 := time.Now()
	if _, err := c.Update(ctx, testUpdates(), false); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 60*time.Millisecond {
		t.Errorf("retry waited %v, want >= ~80ms (retry_after_ms hint ignored?)", d)
	}

	// Clamped: Retry-After: 30 (seconds) with max backoff 20ms — the
	// retry must NOT wait anywhere near 30s.
	_, hs2 := newScriptServer(t, retryAfter(429, "30", `{"error":"shed","code":"overloaded"}`), ok202)
	c2 := New(hs2.URL, WithRetries(1), WithBackoff(time.Millisecond, 20*time.Millisecond))
	t0 = time.Now()
	if _, err := c2.Update(ctx, testUpdates(), false); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Errorf("retry waited %v, want clamped to ~20ms", d)
	}
}

// TestContextCanceledMidBackoff cancels the context while the client
// sleeps between attempts; the call must return the context error, not
// hang or keep retrying.
func TestContextCanceledMidBackoff(t *testing.T) {
	srv, hs := newScriptServer(t, status(429, `{"error":"shed","code":"overloaded","retry_after_ms":60000}`))
	c := New(hs.URL, WithRetries(5), WithBackoff(time.Minute, time.Minute))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := c.Update(ctx, testUpdates(), false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := srv.hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (canceled during the first backoff)", got)
	}
}

// TestTransportErrorRetryIdempotentOnly: a connection that dies before
// any response retries for identified updates and GETs, but surfaces
// immediately for an unidentified POST (it may have been applied).
func TestTransportErrorRetryIdempotentOnly(t *testing.T) {
	ctx := context.Background()
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			// Kill the connection without writing a response.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		ok202(w)
	}))
	defer hs.Close()

	c := New(hs.URL, WithRetries(2), WithBackoff(time.Millisecond, 10*time.Millisecond))
	if _, err := c.Update(ctx, testUpdates(), false); err != nil {
		t.Fatalf("identified update through transport failure: %v", err)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2", got)
	}

	hits.Store(0)
	if _, err := c.UpdateWithID(ctx, "", testUpdates(), false); err == nil {
		t.Fatal("unidentified update through transport failure unexpectedly succeeded")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests for unidentified update, want 1 (no retry)", got)
	}
}

// TestBatchIDStamping: every Update carries a batch ID; retries of one
// call reuse the same ID; separate calls get distinct IDs sharing the
// client's origin.
func TestBatchIDStamping(t *testing.T) {
	ctx := context.Background()
	srv, hs := newScriptServer(t, status(503, `{"error":"x","code":"unavailable"}`), ok202, ok202)
	c := New(hs.URL, WithRetries(2), WithBackoff(time.Millisecond, 10*time.Millisecond))
	if _, err := c.Update(ctx, testUpdates(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Update(ctx, testUpdates(), false); err != nil {
		t.Fatal(err)
	}
	ids := srv.ids
	if len(ids) != 3 {
		t.Fatalf("server saw %d requests, want 3", len(ids))
	}
	if ids[0] == "" || ids[0] != ids[1] {
		t.Errorf("retry changed the batch ID: %q then %q", ids[0], ids[1])
	}
	if ids[2] == ids[0] {
		t.Errorf("second call reused the first call's batch ID %q", ids[2])
	}
	origin := func(id string) string { return strings.SplitN(id, "-", 2)[0] }
	if origin(ids[0]) != origin(ids[2]) || len(origin(ids[0])) != 32 {
		t.Errorf("batch IDs %q and %q should share one 32-hex-char origin", ids[0], ids[2])
	}
}

// TestRetryAfterHTTPDate: RFC 9110 allows Retry-After as an HTTP-date;
// the parsed delay must approximate the time until that date, and past
// or negative hints must be ignored rather than treated as zero-wait.
func TestRetryAfterHTTPDate(t *testing.T) {
	mk := func(header string) *http.Response {
		rec := httptest.NewRecorder()
		rec.Header().Set("Retry-After", header)
		rec.WriteHeader(429)
		_, _ = rec.WriteString(`{"error":"shed","code":"overloaded"}`)
		return rec.Result()
	}
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if ae := decodeAPIError(mk(future)); ae.RetryAfter < 80*time.Second || ae.RetryAfter > 91*time.Second {
		t.Errorf("HTTP-date Retry-After parsed as %v, want ~90s", ae.RetryAfter)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if ae := decodeAPIError(mk(past)); ae.RetryAfter != 0 {
		t.Errorf("past HTTP-date Retry-After parsed as %v, want ignored", ae.RetryAfter)
	}
	if ae := decodeAPIError(mk("-5")); ae.RetryAfter != 0 {
		t.Errorf("negative seconds Retry-After parsed as %v, want ignored", ae.RetryAfter)
	}
	if ae := decodeAPIError(mk("garbage")); ae.RetryAfter != 0 {
		t.Errorf("malformed Retry-After parsed as %v, want ignored", ae.RetryAfter)
	}

	// The envelope's retry_after_ms: negative values are ignored, and a
	// positive envelope wins over the header.
	rec := httptest.NewRecorder()
	rec.WriteHeader(429)
	_, _ = rec.WriteString(`{"error":"shed","code":"overloaded","retry_after_ms":-100}`)
	if ae := decodeAPIError(rec.Result()); ae.RetryAfter != 0 {
		t.Errorf("negative retry_after_ms parsed as %v, want ignored", ae.RetryAfter)
	}
	rec = httptest.NewRecorder()
	rec.Header().Set("Retry-After", "7")
	rec.WriteHeader(429)
	_, _ = rec.WriteString(`{"error":"shed","code":"overloaded","retry_after_ms":250}`)
	if ae := decodeAPIError(rec.Result()); ae.RetryAfter != 250*time.Millisecond {
		t.Errorf("envelope retry_after_ms=250 with header 7s parsed as %v, want 250ms (envelope wins)", ae.RetryAfter)
	}
}

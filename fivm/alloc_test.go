package fivm_test

import (
	"testing"

	"repro/fivm"
	"repro/internal/value"
	"repro/internal/view"
)

// The alloc-regression tests pin the steady-state allocation cost of
// the paper's headline maintenance path: one single-tuple delta applied
// through ApplyDelta (delta prebuilt, as the serving pipeline does).
// The ceilings are the values measured after the scratch-buffer rework
// (see docs/PERF.md) plus ~25% headroom for Go-version noise — they are
// regression tripwires, not targets. If an intentional change raises
// them, update the constants alongside an explanatory commit, and keep
// fivm-bench compare green (it enforces a 10% allocs/op budget on the
// full benchmark suite).
const (
	// maxAllocsCovarSingle bounds allocs for one insert + one delete of
	// a single tuple on the scalar-covar engine (degree 3, two-relation
	// join). Measured 76 allocs for the pair (38 per update) on the
	// indexed delta path (JoinProbeWith probes the persistent join-key
	// indexes, so the per-call build-side index of the old scan path is
	// gone); was 82 after the scratch-buffer rework, 230+ before it.
	maxAllocsCovarSingle = 95
	// maxAllocsCountSingle bounds the same pair on the count engine.
	// Measured 48 allocs for the pair (24 per update) on the indexed
	// path (down from 54 on the build-and-scan path).
	maxAllocsCountSingle = 60
)

func allocFixtureData() map[string][]value.Tuple {
	return map[string][]value.Tuple{
		"R": {value.T("a1", 1), value.T("a2", 2)},
		"S": {value.T("a1", 1, 1), value.T("a1", 2, 3), value.T("a2", 2, 2)},
	}
}

// measureSingleTupleApply builds the ±1 deltas for one R tuple and
// returns the allocations of applying the insert and the delete (the
// pair leaves the engine state unchanged, so every iteration sees the
// same view sizes).
func measureSingleTupleApply[V any](t *testing.T, eng *fivm.Engine[V]) float64 {
	t.Helper()
	if err := eng.Init(allocFixtureData()); err != nil {
		t.Fatal(err)
	}
	tup := value.T("a1", 1)
	dIns, err := eng.DeltaFor("R", []view.Update{{Rel: "R", Tuple: tup, Mult: 1}})
	if err != nil {
		t.Fatal(err)
	}
	dDel, err := eng.DeltaFor("R", []view.Update{{Rel: "R", Tuple: tup, Mult: -1}})
	if err != nil {
		t.Fatal(err)
	}
	apply := func() {
		if err := eng.ApplyDelta("R", dIns); err != nil {
			t.Fatal(err)
		}
		if err := eng.ApplyDelta("R", dDel); err != nil {
			t.Fatal(err)
		}
	}
	apply() // warm the tree's scratch buffers before measuring
	return testing.AllocsPerRun(300, apply)
}

func TestApplyDeltaAllocsCovar(t *testing.T) {
	rels := []fivm.RelationSpec{
		{Name: "R", Attrs: []string{"A", "B"}},
		{Name: "S", Attrs: []string{"A", "C", "D"}},
	}
	eng, err := fivm.NewCovarEngine(rels, []string{"B", "C", "D"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := measureSingleTupleApply(t, eng.Engine)
	t.Logf("covar single-tuple insert+delete: %.0f allocs", got)
	if got > maxAllocsCovarSingle {
		t.Errorf("covar single-tuple ApplyDelta pair allocates %.0f, budget %d — the hot path regressed (see docs/PERF.md)", got, maxAllocsCovarSingle)
	}
}

func TestApplyDeltaAllocsCount(t *testing.T) {
	cat := fivm.NewCatalog()
	if err := cat.AddRelation("R", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRelation("S", "A", "C", "D"); err != nil {
		t.Fatal(err)
	}
	q, err := fivm.Parse(cat, "SELECT SUM(1) FROM R NATURAL JOIN S")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := fivm.NewCountEngine(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := measureSingleTupleApply(t, eng.Engine)
	t.Logf("count single-tuple insert+delete: %.0f allocs", got)
	if got > maxAllocsCountSingle {
		t.Errorf("count single-tuple ApplyDelta pair allocates %.0f, budget %d — the hot path regressed (see docs/PERF.md)", got, maxAllocsCountSingle)
	}
}

package fivm_test

import (
	"math"
	"testing"

	"repro/fivm"
	"repro/internal/dataset"
)

// TestRangedEngineMatchesFullEngine maintains the same COVAR statistics
// with full-degree payloads and with ranged payloads over an update
// stream; every aggregate must agree at every batch boundary. The
// ranged engine reorders attributes structurally, so comparison is by
// attribute name.
func TestRangedEngineMatchesFullEngine(t *testing.T) {
	cfg := dataset.RetailerConfig{
		Locations: 8, Dates: 15, Items: 30, InventoryRows: 400, Zips: 6, Seed: 77,
	}
	db := dataset.Retailer(cfg)
	var rels []fivm.RelationSpec
	for _, r := range db.Relations {
		rels = append(rels, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
	}
	attrs := []string{"inventoryunits", "prize", "avghhi", "maxtemp"}

	full, err := fivm.NewCovarEngine(rels, attrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	ranged, err := fivm.NewRangedCovarEngine(rels, attrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := db.TupleMap()
	if err := full.Init(data); err != nil {
		t.Fatal(err)
	}
	if err := ranged.Init(data); err != nil {
		t.Fatal(err)
	}

	// Index mapping: caller order (full) -> structural order (ranged).
	rIdx := map[string]int{}
	for i, a := range ranged.Attrs {
		rIdx[a] = i
	}

	approxEqRanged := func(a, b float64) bool {
		if a == b {
			return true
		}
		return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
	}
	check := func(when string) {
		t.Helper()
		fp := full.Payload()
		rp, err := ranged.Payload().ToCovar(len(ranged.Attrs))
		if err != nil {
			t.Fatal(err)
		}
		if fp == nil || rp == nil {
			if fp != nil || rp != nil {
				t.Fatalf("%s: one engine empty, the other not", when)
			}
			return
		}
		if !approxEqRanged(fp.Count(), rp.Count()) {
			t.Fatalf("%s: count %v vs %v", when, fp.Count(), rp.Count())
		}
		for i, a := range attrs {
			if !approxEqRanged(fp.Sum(i), rp.Sum(rIdx[a])) {
				t.Fatalf("%s: SUM(%s) %v vs %v", when, a, fp.Sum(i), rp.Sum(rIdx[a]))
			}
			for j := i; j < len(attrs); j++ {
				b := attrs[j]
				if !approxEqRanged(fp.Prod(i, j), rp.Prod(rIdx[a], rIdx[b])) {
					t.Fatalf("%s: SUM(%s*%s) %v vs %v", when, a, b, fp.Prod(i, j), rp.Prod(rIdx[a], rIdx[b]))
				}
			}
		}
	}
	check("after init")
	if full.Payload() == nil {
		t.Fatal("empty join after init")
	}

	st, err := dataset.NewStream(db, dataset.StreamConfig{
		Relation: "Inventory", Total: 400, DeleteRatio: 0.3, Seed: 78,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, bulk := range st.Bulks(80) {
		if err := full.Apply(bulk); err != nil {
			t.Fatal(err)
		}
		if err := ranged.Apply(bulk); err != nil {
			t.Fatal(err)
		}
		check("after bulk")
	}

	// Sigma extraction for the solver works off the ranged payload too.
	sigma, err := ranged.Sigma()
	if err != nil {
		t.Fatal(err)
	}
	if sigma.Dim() != len(attrs) {
		t.Errorf("sigma dim = %d", sigma.Dim())
	}
}

func TestRangedEngineErrors(t *testing.T) {
	rels := []fivm.RelationSpec{{Name: "R", Attrs: []string{"A", "B"}}}
	if _, err := fivm.NewRangedCovarEngine(rels, nil, nil); err == nil {
		t.Error("empty attrs accepted")
	}
	if _, err := fivm.NewRangedCovarEngine(rels, []string{"Z"}, nil); err == nil {
		t.Error("unknown attr accepted")
	}
	if _, err := fivm.NewRangedCovarEngine(rels, []string{"B", "B"}, nil); err == nil {
		t.Error("duplicate attr accepted")
	}
}

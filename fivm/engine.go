package fivm

import (
	"fmt"
	"io"

	"repro/internal/m3"
	"repro/internal/relation"
	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
)

// Kind names an engine instantiation — which ring the shared maintenance
// machinery runs over.
type Kind string

// The engine kinds Open can build.
const (
	KindAnalysis    Kind = "analysis"    // generalized COVAR / MI over mixed features
	KindCount       Kind = "count"       // SUM(1) over the Z ring
	KindFloat       Kind = "float"       // one SUM aggregate over the float ring
	KindCovar       Kind = "covar"       // scalar COVAR over all-continuous attributes
	KindRangedCovar Kind = "rangedcovar" // scalar COVAR with ranged payloads
	KindJoin        Kind = "join"        // the join result itself, via the relational ring
	KindCustom      Kind = "custom"      // caller-supplied ring via NewEngine
)

// Delta is an opaque prebuilt delta relation flowing between BuildDelta
// and ApplyBuilt. Concretely it is the engine's *relation.Map[V]; the
// interface lets a ring-agnostic serving layer carry it without knowing
// V. Len reports the number of distinct delta tuples.
type Delta interface{ Len() int }

// Model is an immutable view of an engine's maintained result, published
// by PublishModel for lock-free concurrent readers. Implementations are
// deep copies: nothing the engine does after publishing can change them.
//
// Concrete models are AnalysisModel (ridge/COVAR/MI), TableModel
// (count, float-SUM, and join results), and CovarModel (scalar COVAR).
type Model interface {
	// Kind identifies the engine kind that published the model.
	Kind() Kind
	// Count is a scalar summary of the maintained result: the join
	// cardinality where the ring tracks one, otherwise the grand total
	// of the maintained aggregate (see each model's documentation).
	Count() float64
	// ResultJSON renders the model for machine consumption (the serving
	// layer's GET /model). It returns an error when there is no
	// renderable result yet — e.g. ridge fitting failed or the join is
	// empty for a matrix-valued result.
	ResultJSON() (any, error)
	// Predict evaluates the model's predictor on one feature vector.
	// Engines that publish no predictive model return an error.
	Predict(x map[string]value.Value) (float64, error)
}

// Engine is the generic core every F-IVM workload shares: a view tree
// over one ring, plus the lifecycle around it — bulk load, incremental
// maintenance, delta prebuilding, deep-cloned reads, snapshot
// persistence, and model publishing. The six public engines (Analysis,
// CountEngine, FloatEngine, CovarEngine, RangedCovarEngine, JoinEngine)
// are thin instantiations that add ring-specific typed accessors.
//
// Result-access convention (uniform across all engines): Payload and
// Result never fail — an empty join yields the ring's zero (nil for
// pointer-shaped rings) and an empty result relation. Typed accessors
// that must interpret the payload into derived structure (Covar, Sigma,
// Ridge, MI, a Model's ResultJSON) return a descriptive error on the
// empty join instead of fabricating zeros; plain enumerations (Tuples)
// return empty collections.
//
// An Engine is not safe for concurrent use, with two deliberate
// exceptions that the serving layer builds on: BuildDelta/DeltaFor only
// read immutable tree metadata and may run concurrently with
// maintenance, and every published Model is an isolated deep copy.
type Engine[V any] struct {
	tree    *view.Tree[V]
	kind    Kind
	codec   ring.Codec[V]
	clone   func(V) V
	info    m3.RingInfo
	publish func(prev Model) Model
}

// EngineOptions configures NewEngine beyond the view tree itself. All
// fields are optional.
type EngineOptions[V any] struct {
	// Codec enables WriteSnapshot/ReadSnapshot; without one the
	// snapshot methods fail.
	Codec ring.Codec[V]
	// Clone deep-copies one payload for CloneView/ClonePayload; nil
	// means payloads are value types copied by assignment.
	Clone func(V) V
	// M3 names the ring for the M3/ViewTree renderings.
	M3 m3.RingInfo
	// Publish builds the published Model; nil engines publish a
	// ResultSummary.
	Publish func(prev Model) Model
}

// NewEngine wraps an already-built view tree in the generic lifecycle.
// The public constructors use it internally; it is exported so custom
// rings (e.g. the matrix ring) get the same lifecycle without a bespoke
// engine type.
func NewEngine[V any](kind Kind, tree *view.Tree[V], opts EngineOptions[V]) *Engine[V] {
	if kind == "" {
		kind = KindCustom
	}
	clone := opts.Clone
	if clone == nil {
		clone = func(v V) V { return v }
	}
	info := opts.M3
	if info.Name == "" {
		info.Name = fmt.Sprintf("%T", tree.Ring())
	}
	return &Engine[V]{tree: tree, kind: kind, codec: opts.Codec, clone: clone, info: info, publish: opts.Publish}
}

// Kind identifies the engine instantiation.
func (e *Engine[V]) Kind() Kind { return e.kind }

// Tree exposes the underlying view tree for advanced inspection.
func (e *Engine[V]) Tree() *view.Tree[V] { return e.tree }

// Init bulk-loads the initial database (payload One per tuple,
// duplicates accumulate) and evaluates all views.
func (e *Engine[V]) Init(data map[string][]value.Tuple) error { return e.tree.Init(data) }

// InitWeighted bulk-loads relations whose tuples carry explicit ring
// payloads — how non-counting interpretations load data (e.g. matrix
// entries as payloads of index tuples).
func (e *Engine[V]) InitWeighted(data map[string]*relation.Map[V]) error {
	return e.tree.InitWeighted(data)
}

// Apply maintains the views under a batch of tuple-level updates
// (Mult > 0 inserts, < 0 deletes).
func (e *Engine[V]) Apply(ups []view.Update) error { return e.tree.ApplyUpdates(ups) }

// Insert applies single-tuple inserts to rel.
func (e *Engine[V]) Insert(rel string, tuples ...value.Tuple) error {
	return e.tree.Insert(rel, tuples...)
}

// Delete applies single-tuple deletes to rel.
func (e *Engine[V]) Delete(rel string, tuples ...value.Tuple) error {
	return e.tree.Delete(rel, tuples...)
}

// ApplyDelta maintains the views under a prebuilt delta relation, in
// time proportional to the delta: propagation probes the view tree's
// persistent join-key indexes rather than scanning sibling views (see
// docs/ARCHITECTURE.md). With SetParallelism configured, deltas above
// the view layer's threshold propagate hash-partitioned across a
// worker pool; the maintained views are the sequential path's
// (bit-identical whenever ring addition is exact — see
// view.Tree.SetParallelism for the float rounding caveat).
func (e *Engine[V]) ApplyDelta(rel string, d *relation.Map[V]) error {
	return e.tree.ApplyDelta(rel, d)
}

// SetParallelism configures parallel delta propagation: batches are
// hash-partitioned by join key and propagated on `workers` goroutines
// (see view.Tree.SetParallelism). workers <= 0 selects GOMAXPROCS;
// workers == 1 restores the sequential path. Small deltas (below
// view.DefaultParallelThreshold tuples) stay sequential either way.
// The engine remains single-writer: do not call this concurrently with
// maintenance.
func (e *Engine[V]) SetParallelism(workers int) {
	e.tree.SetParallelism(workers, 0)
}

// DeltaFor builds a delta relation for rel from tuple-level updates; it
// only reads immutable tree metadata, so it is safe to call concurrently
// with maintenance — an ingestion layer prepares batch deltas off the
// maintenance thread and applies them with ApplyDelta.
func (e *Engine[V]) DeltaFor(rel string, ups []view.Update) (*relation.Map[V], error) {
	return e.tree.DeltaFor(rel, ups)
}

// BuildDelta is DeltaFor behind the type-erased Delta, for ring-agnostic
// callers like the serving layer. Safe to call concurrently with
// maintenance.
func (e *Engine[V]) BuildDelta(rel string, ups []view.Update) (Delta, error) {
	return e.tree.DeltaFor(rel, ups)
}

// ApplyBuilt applies a delta produced by BuildDelta of the same engine
// configuration.
func (e *Engine[V]) ApplyBuilt(rel string, d Delta) error {
	m, ok := d.(*relation.Map[V])
	if !ok {
		return fmt.Errorf("fivm: delta type %T does not match the engine's payload type", d)
	}
	return e.tree.ApplyDelta(rel, m)
}

// Payload returns the maintained compound aggregate of a query without
// group-by. It never fails: the empty join yields the ring's zero (nil
// for pointer-shaped rings) — see the Engine doc for the result-access
// convention.
func (e *Engine[V]) Payload() V { return e.tree.ResultPayload() }

// Result returns the maintained result relation, keyed by the query's
// free variables. Callers must not mutate it; use CloneView for an
// isolated copy.
func (e *Engine[V]) Result() *relation.Map[V] { return e.tree.Result() }

// ClonePayload returns a deep copy of the maintained compound aggregate,
// sharing nothing with the engine — a snapshot publisher can hand it to
// concurrent readers while the engine keeps applying deltas.
func (e *Engine[V]) ClonePayload() V { return e.clone(e.tree.ResultPayload()) }

// CloneView returns a deep copy of the maintained result relation with
// every payload cloned. Like ClonePayload it shares nothing with the
// engine.
func (e *Engine[V]) CloneView() *relation.Map[V] {
	res := e.tree.Result()
	out := relation.New[V](res.Schema())
	res.Each(func(t value.Tuple, p V) { out.Set(t, e.clone(p)) })
	return out
}

// RelationNames returns the input relation names, sorted.
func (e *Engine[V]) RelationNames() []string { return e.tree.RelationNames() }

// Arity returns the attribute count of input relation rel.
func (e *Engine[V]) Arity(rel string) (int, bool) {
	src, ok := e.tree.Source(rel)
	if !ok {
		return 0, false
	}
	return src.Schema().Len(), true
}

// Stats exposes maintenance counters.
func (e *Engine[V]) Stats() view.Stats { return e.tree.Stats() }

// ViewTree renders the maintained view tree.
func (e *Engine[V]) ViewTree() string { return m3.Render(e.tree, e.info).TreeDrawing }

// M3 renders the per-view M3 maintenance code.
func (e *Engine[V]) M3() string { return m3.Render(e.tree, e.info).String() }

// WriteSnapshot persists the engine's input relations (views are derived
// state, recomputed on restore). The snapshot is self-contained binary,
// tagged with the payload codec; pair it with an engine built from the
// same configuration.
func (e *Engine[V]) WriteSnapshot(w io.Writer) error {
	if e.codec == nil {
		return fmt.Errorf("fivm: %s engine has no snapshot codec", e.kind)
	}
	return e.tree.WriteSnapshot(w, e.codec)
}

// ReadSnapshot loads input relations from a snapshot written by
// WriteSnapshot and re-evaluates every view. The receiving engine must
// have the same relations, lifts, and variable order as the writer;
// snapshots from a different engine kind are rejected by the codec tag.
func (e *Engine[V]) ReadSnapshot(r io.Reader) error {
	if e.codec == nil {
		return fmt.Errorf("fivm: %s engine has no snapshot codec", e.kind)
	}
	return e.tree.ReadSnapshot(r, e.codec)
}

// WritePartial serializes the engine's maintained result relation — its
// partial aggregate of the global query when the engine owns one shard
// of the anchor relation — for cross-shard merging (see MergePartials).
// Like snapshots it requires a payload codec.
func (e *Engine[V]) WritePartial(w io.Writer) error {
	if e.codec == nil {
		return fmt.Errorf("fivm: %s engine has no snapshot codec", e.kind)
	}
	return e.tree.WritePartial(w, e.codec)
}

// MergePartials ring-merges per-shard partial results (each written by
// WritePartial on an engine of the same configuration) and publishes a
// Model of the merged relation. The merge is exact by associativity and
// commutativity of ring addition: shards own disjoint key-ranges of the
// anchor relation, so their partial aggregates sum to the single-engine
// result (bit-identically for exact rings). The engine's own maintained
// state is untouched — the merged relation is swapped in only for the
// duration of the publish — so a data-less "merger" engine built from
// the cluster's configuration can serve merged reads repeatedly. Not
// safe concurrently with maintenance or other MergePartials calls.
func (e *Engine[V]) MergePartials(parts []io.Reader) (Model, error) {
	if e.codec == nil {
		return nil, fmt.Errorf("fivm: %s engine has no snapshot codec", e.kind)
	}
	merged := relation.New[V](e.tree.Result().Schema())
	for i, p := range parts {
		m, err := e.tree.ReadPartial(p, e.codec)
		if err != nil {
			return nil, fmt.Errorf("fivm: partial %d: %w", i, err)
		}
		merged.MergeAll(e.tree.Ring(), m)
	}
	old := e.tree.SwapResult(merged)
	defer e.tree.SwapResult(old)
	return e.PublishModel(nil), nil
}

// PartitionKey returns the attribute positions relation rel's updates
// hash-partition on — the join key the engine's internal parallelism
// uses, exported so a cluster shard map routes updates identically
// (owner = relation.HashTuple(tuple, keyIdx, nil) % shards). ok is
// false when rel is not an input relation.
func (e *Engine[V]) PartitionKey(rel string) ([]int, bool) {
	return e.tree.PartitionKey(rel)
}

// PublishModel builds an immutable Model of the current result, warm-
// starting from prev (the previously published model, nil on the first
// publish) where the engine supports it. It reads live engine state, so
// a serving layer must call it from its single writer.
func (e *Engine[V]) PublishModel(prev Model) Model {
	if e.publish != nil {
		return e.publish(prev)
	}
	return &ResultSummary{EngineKind: e.kind, Groups: e.tree.Result().Len()}
}

// ResultSummary is the Model published by engines without a richer
// rendering hook (NewEngine with no Publish option): just the engine
// kind and the number of result groups.
type ResultSummary struct {
	EngineKind Kind `json:"kind"`
	Groups     int  `json:"groups"`
}

// Kind identifies the publishing engine.
func (m *ResultSummary) Kind() Kind { return m.EngineKind }

// Count returns the number of result groups.
func (m *ResultSummary) Count() float64 { return float64(m.Groups) }

// ResultJSON renders the summary.
func (m *ResultSummary) ResultJSON() (any, error) {
	return map[string]any{"groups": m.Groups}, nil
}

// Predict always fails: a custom engine publishes no predictor.
func (m *ResultSummary) Predict(map[string]value.Value) (float64, error) {
	return 0, fmt.Errorf("fivm: %s engine serves no predictive model", m.EngineKind)
}

// tableModel snapshots the result relation into a TableModel. The
// publish-time cost is one shallow clone (payloads are immutable under
// ring operations, so sharing them is a full snapshot); converting with
// toFloat, sorting, and decoding keys is deferred to the first read of
// the model.
func tableModel[V any](e *Engine[V], toFloat func(V) float64) *TableModel {
	frozen := e.tree.Result().Clone()
	return &TableModel{
		EngineKind: e.kind,
		Attrs:      frozen.Schema().Attrs(),
		build: func() ([]TableRow, float64) {
			rows := make([]TableRow, 0, frozen.Len())
			var total float64
			frozen.EachSorted(func(t value.Tuple, p V) {
				v := toFloat(p)
				rows = append(rows, TableRow{Key: jsonTuple(t), Value: v})
				total += v
			})
			return rows, total
		},
	}
}

package fivm_test

import (
	"testing"

	"repro/fivm"
	"repro/internal/value"
	"repro/internal/view"
)

func TestJoinEngineMaintainsJoinResult(t *testing.T) {
	rels := []fivm.RelationSpec{
		{Name: "R", Attrs: []string{"A", "B"}},
		{Name: "S", Attrs: []string{"A", "C", "D"}},
	}
	eng, err := fivm.NewJoinEngine(rels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Init(toyData()); err != nil {
		t.Fatal(err)
	}
	if eng.Size() != 3 {
		t.Fatalf("join size = %d, want 3: %v", eng.Size(), eng.Result())
	}
	tuples, mults := eng.Tuples()
	if len(tuples) != 3 {
		t.Fatalf("decoded %d tuples", len(tuples))
	}
	for i, m := range mults {
		if m != 1 {
			t.Errorf("tuple %v has multiplicity %v", tuples[i], m)
		}
		// Every result tuple covers all 5 attributes (A, B, C, D + the
		// per-lift layout includes each variable exactly once).
		if len(tuples[i]) != 4 {
			t.Errorf("tuple %v has arity %d, want 4", tuples[i], len(tuples[i]))
		}
	}

	// Incremental maintenance must match recomputation exactly.
	ups := []view.Update{
		{Rel: "R", Tuple: value.T("a1", 1), Mult: 1}, // duplicates (a1, b1)
		{Rel: "S", Tuple: value.T("a2", 9, 9), Mult: 1},
		{Rel: "S", Tuple: value.T("a1", 2, 3), Mult: -1},
	}
	if err := eng.Apply(ups); err != nil {
		t.Fatal(err)
	}

	fresh, err := fivm.NewJoinEngine(rels, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := toyData()
	data["R"] = append(data["R"], value.T("a1", 1))
	data["S"] = append(data["S"], value.T("a2", 9, 9))
	data["S"] = data["S"][:0+len(data["S"])]
	// Remove (a1, 2, 3).
	var s2 []value.Tuple
	for _, tp := range data["S"] {
		if !tp.Equal(value.T("a1", 2, 3)) {
			s2 = append(s2, tp)
		}
	}
	data["S"] = s2
	if err := fresh.Init(data); err != nil {
		t.Fatal(err)
	}
	if !eng.Result().Equal(fresh.Result()) {
		t.Errorf("incremental join %v != recomputed %v", eng.Result(), fresh.Result())
	}
	// (a1, b1) now has multiplicity 2 in R, so its join tuples carry
	// multiplicity 2.
	var saw2 bool
	_, ms := eng.Tuples()
	for _, m := range ms {
		if m == 2 {
			saw2 = true
		}
	}
	if !saw2 {
		t.Errorf("no multiplicity-2 tuple after duplicate insert: %v", eng.Result())
	}
}

func TestJoinEngineDeleteToEmpty(t *testing.T) {
	rels := []fivm.RelationSpec{
		{Name: "R", Attrs: []string{"A"}},
		{Name: "S", Attrs: []string{"A"}},
	}
	eng, err := fivm.NewJoinEngine(rels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Init(map[string][]value.Tuple{
		"R": {value.T(1)},
		"S": {value.T(1)},
	}); err != nil {
		t.Fatal(err)
	}
	if eng.Size() != 1 {
		t.Fatalf("size = %d", eng.Size())
	}
	if err := eng.Delete("R", value.T(1)); err != nil {
		t.Fatal(err)
	}
	if eng.Size() != 0 {
		t.Errorf("join not empty after delete: %v", eng.Result())
	}
}

func TestJoinEngineErrors(t *testing.T) {
	if _, err := fivm.NewJoinEngine(nil, nil); err == nil {
		t.Error("no relations accepted")
	}
}

package fivm

import (
	"fmt"

	"repro/internal/m3"
	"repro/internal/ml"
	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

// RangedCovarEngine maintains the scalar COVAR matrix with *ranged*
// payloads — the `RingCofactor<double, idx, cnt>` optimization of the
// paper's Figure 2d. Each view carries aggregates only for the
// attributes of its own subtree: leaf views hold degree-1 payloads,
// sizes grow toward the root, and only the root holds the full degree-m
// compound. Aggregate indexes are assigned in the view tree's
// structural (post-)order so every payload product combines adjacent
// ranges.
type RangedCovarEngine struct {
	*Engine[*ring.RangedCovar]
	Ring ring.RangedCovarRing
	// Attrs maps aggregate index -> attribute name (the structural
	// assignment order, not the caller's order).
	Attrs []string
}

// NewRangedCovarEngine builds the engine over the continuous attributes
// attrs of the joined relations.
func NewRangedCovarEngine(rels []RelationSpec, attrs []string, order *vo.Order) (*RangedCovarEngine, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("fivm: no aggregate attributes")
	}
	vrels := make([]vo.Rel, len(rels))
	schema := value.NewSchema()
	for i, r := range rels {
		vrels[i] = vo.Rel{Name: r.Name, Schema: value.NewSchema(r.Attrs...)}
		schema = schema.Union(vrels[i].Schema)
	}
	want := map[string]bool{}
	for _, a := range attrs {
		if !schema.Has(a) {
			return nil, fmt.Errorf("fivm: aggregate attribute %s not in any relation", a)
		}
		if want[a] {
			return nil, fmt.Errorf("fivm: attribute %s listed twice", a)
		}
		want[a] = true
	}
	if order == nil {
		var err error
		order, err = vo.Build(vrels)
		if err != nil {
			return nil, err
		}
	}

	// Assign aggregate indexes in post-order of the variable order: the
	// order in which the engine's products combine subtree payloads, so
	// ranges always meet adjacently.
	var rg ring.RangedCovarRing
	lifts := map[string]ring.Lift[*ring.RangedCovar]{}
	var indexed []string
	idx := map[string]int{}
	var post func(n *vo.Node)
	post = func(n *vo.Node) {
		for _, c := range n.Children {
			post(c)
		}
		if want[n.Var] {
			lifts[n.Var] = rg.Lift(len(indexed))
			idx[n.Var] = len(indexed)
			indexed = append(indexed, n.Var)
		}
	}
	for _, r := range order.Roots {
		post(r)
	}
	if len(indexed) != len(attrs) {
		return nil, fmt.Errorf("fivm: indexed %d of %d aggregate attributes; attribute missing from the order", len(indexed), len(attrs))
	}

	tree, err := view.New(view.Spec[*ring.RangedCovar]{
		Ring:      rg,
		Order:     order,
		Relations: vrels,
		Lifts:     lifts,
	})
	if err != nil {
		return nil, err
	}
	e := &RangedCovarEngine{Ring: rg, Attrs: indexed}
	e.Engine = NewEngine(KindRangedCovar, tree, EngineOptions[*ring.RangedCovar]{
		Codec: ring.RangedCovarCodec{},
		Clone: (*ring.RangedCovar).Clone,
		M3: m3.RingInfo{
			Name: "RingCofactor<double, idx, cnt>",
			LiftIndexOf: func(v string) int {
				if i, ok := idx[v]; ok {
					return i
				}
				return -1
			},
		},
		Publish: func(Model) Model {
			m := &CovarModel{EngineKind: KindRangedCovar, Attrs: e.Attrs}
			p, err := e.Covar()
			if err != nil {
				m.Err = err.Error()
			} else {
				m.Payload = p.Clone()
			}
			return m
		},
	})
	return e, nil
}

// Covar widens the root compound aggregate to a full Covar of degree
// len(Attrs), failing on the empty join per the package's result-access
// convention. Use Payload for the raw ranged (possibly nil) value.
func (e *RangedCovarEngine) Covar() (*ring.Covar, error) {
	p, err := e.Payload().ToCovar(len(e.Attrs))
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("fivm: empty join result")
	}
	return p, nil
}

// Sigma converts the payload into the solver's SigmaMatrix with columns
// in e.Attrs order.
func (e *RangedCovarEngine) Sigma() (*ml.SigmaMatrix, error) {
	p, err := e.Covar()
	if err != nil {
		return nil, err
	}
	feats := make([]ml.Feature, len(e.Attrs))
	for i, a := range e.Attrs {
		feats[i] = ml.Feature{Name: a, Index: i}
	}
	return ml.SigmaFromCovar(p, feats)
}

package fivm

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/ml"
	"repro/internal/query"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

// AnyEngine is the kind-independent surface every engine shares — the
// generic Engine[V] lifecycle with the payload type erased. It is what
// Open returns and what the serving layer hosts; type-assert to the
// concrete engine (*Analysis, *CountEngine, ...) for typed accessors.
type AnyEngine interface {
	// Kind identifies the engine instantiation.
	Kind() Kind
	// Init bulk-loads the initial database and evaluates all views.
	Init(data map[string][]value.Tuple) error
	// Apply maintains the views under tuple-level updates.
	Apply(ups []view.Update) error
	// Insert applies single-tuple inserts to rel.
	Insert(rel string, tuples ...value.Tuple) error
	// Delete applies single-tuple deletes to rel.
	Delete(rel string, tuples ...value.Tuple) error
	// BuildDelta prebuilds a delta for rel; safe concurrently with
	// maintenance.
	BuildDelta(rel string, ups []view.Update) (Delta, error)
	// ApplyBuilt applies a delta from BuildDelta.
	ApplyBuilt(rel string, d Delta) error
	// SetParallelism configures parallel delta propagation (workers <= 0
	// selects GOMAXPROCS, 1 is sequential). Not safe concurrently with
	// maintenance.
	SetParallelism(workers int)
	// PublishModel builds an immutable model of the current result.
	PublishModel(prev Model) Model
	// RelationNames returns the input relation names, sorted.
	RelationNames() []string
	// Arity returns the attribute count of input relation rel.
	Arity(rel string) (int, bool)
	// Stats exposes maintenance counters.
	Stats() view.Stats
	// ViewTree renders the maintained view tree.
	ViewTree() string
	// M3 renders the per-view maintenance code.
	M3() string
	// WriteSnapshot persists the input relations.
	WriteSnapshot(w io.Writer) error
	// ReadSnapshot restores input relations and re-evaluates views.
	ReadSnapshot(r io.Reader) error
	// WritePartial serializes the maintained result relation for
	// cross-shard merging.
	WritePartial(w io.Writer) error
	// MergePartials publishes a Model ring-merged from per-shard
	// partials written by WritePartial.
	MergePartials(parts []io.Reader) (Model, error)
	// PartitionKey returns the join-key positions rel's updates
	// hash-partition on (see Engine.PartitionKey).
	PartitionKey(rel string) ([]int, bool)
}

// Config declares a workload for Open: either a SQL query over the
// declared relations (count/float kinds) or a declarative
// relations+features/attrs spec (analysis/covar/join kinds). Kind may
// be left empty to infer the engine from which fields are set.
type Config struct {
	// Kind forces a specific engine; empty infers one (see Open).
	Kind Kind
	// Query is SQL-subset text compiled against Relations, e.g.
	// "SELECT A, SUM(1) FROM R NATURAL JOIN S GROUP BY A".
	Query string
	// Relations declares the input relations of the join.
	Relations []RelationSpec
	// Features configures an Analysis engine.
	Features []FeatureSpec
	// Attrs configures a (Ranged)CovarEngine's aggregate attributes.
	Attrs []string
	// Label and Ridge configure the Analysis' published model (see
	// AnalysisConfig).
	Label string
	Ridge ml.RidgeConfig
	// Order optionally supplies a hand-built variable order.
	Order *vo.Order
	// Workers enables parallel delta propagation: update batches are
	// hash-partitioned by join key and propagated concurrently, with
	// the per-partition delta views merged by the ring addition —
	// producing the sequential path's views (bit-identical whenever
	// ring addition is exact; see view.Tree.SetParallelism). 0 keeps
	// the default sequential path, a negative value selects
	// runtime.GOMAXPROCS(0), and n >= 2 runs n workers. (Note the
	// zero-value asymmetry with Engine.SetParallelism, where 0 also
	// selects GOMAXPROCS: a zero Config field must not silently turn
	// on parallelism.) Batches below the view layer's threshold stay
	// sequential.
	Workers int
}

// Open is the single entry point of the package: it compiles cfg into
// the right engine. Kind selects explicitly; when empty it is inferred —
// a Query yields KindCount for SUM(1) and KindFloat otherwise, Features
// yield KindAnalysis, Attrs yield KindCovar, and bare Relations yield
// KindJoin.
func Open(cfg Config) (AnyEngine, error) {
	if len(cfg.Relations) == 0 {
		return nil, fmt.Errorf("fivm: Open needs at least one relation")
	}
	// A workload is one of Query, Features, or Attrs; accepting several
	// and resolving by precedence would silently build a different
	// engine than one of the fields describes.
	set := make([]string, 0, 3)
	if cfg.Query != "" {
		set = append(set, "Query")
	}
	if len(cfg.Features) > 0 {
		set = append(set, "Features")
	}
	if len(cfg.Attrs) > 0 {
		set = append(set, "Attrs")
	}
	if len(set) > 1 {
		return nil, fmt.Errorf("fivm: ambiguous config: %s describe different engines; set at most one", strings.Join(set, " and "))
	}
	var q *query.Query
	if cfg.Query != "" {
		cat := NewCatalog()
		for _, r := range cfg.Relations {
			if err := cat.AddRelation(r.Name, r.Attrs...); err != nil {
				return nil, err
			}
		}
		var err error
		q, err = Parse(cat, cfg.Query)
		if err != nil {
			return nil, err
		}
	}
	kind := cfg.Kind
	if kind == "" {
		switch {
		case q != nil:
			if isCountQuery(q) {
				kind = KindCount
			} else {
				kind = KindFloat
			}
		case len(cfg.Features) > 0:
			kind = KindAnalysis
		case len(cfg.Attrs) > 0:
			kind = KindCovar
		default:
			kind = KindJoin
		}
	}
	if cfg.Label != "" && kind != KindAnalysis {
		return nil, fmt.Errorf("fivm: Label is only meaningful for the analysis engine, not %s (it publishes no ridge model)", kind)
	}
	if cfg.Ridge != (ml.RidgeConfig{}) && cfg.Label == "" {
		return nil, fmt.Errorf("fivm: Ridge is only consumed when an analysis engine fits a published model; set Label too")
	}
	// With an explicit Kind a stray workload field would be silently
	// dropped; reject it like the ambiguity above.
	if cfg.Query != "" && kind != KindCount && kind != KindFloat {
		return nil, fmt.Errorf("fivm: Query is not consumed by the %s engine", kind)
	}
	if len(cfg.Features) > 0 && kind != KindAnalysis {
		return nil, fmt.Errorf("fivm: Features are not consumed by the %s engine", kind)
	}
	if len(cfg.Attrs) > 0 && kind != KindCovar && kind != KindRangedCovar {
		return nil, fmt.Errorf("fivm: Attrs are not consumed by the %s engine", kind)
	}
	var eng AnyEngine
	var err error
	switch kind {
	case KindAnalysis:
		eng, err = NewAnalysis(AnalysisConfig{
			Relations: cfg.Relations,
			Features:  cfg.Features,
			Order:     cfg.Order,
			Label:     cfg.Label,
			Ridge:     cfg.Ridge,
		})
	case KindCount:
		if q == nil {
			return nil, fmt.Errorf("fivm: %s engine needs a Query", kind)
		}
		eng, err = NewCountEngine(q, cfg.Order)
	case KindFloat:
		if q == nil {
			return nil, fmt.Errorf("fivm: %s engine needs a Query", kind)
		}
		eng, err = NewFloatEngine(q, cfg.Order)
	case KindCovar:
		eng, err = NewCovarEngine(cfg.Relations, cfg.Attrs, cfg.Order)
	case KindRangedCovar:
		eng, err = NewRangedCovarEngine(cfg.Relations, cfg.Attrs, cfg.Order)
	case KindJoin:
		eng, err = NewJoinEngine(cfg.Relations, cfg.Order)
	default:
		return nil, fmt.Errorf("fivm: unknown engine kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	if cfg.Workers != 0 {
		eng.SetParallelism(cfg.Workers)
	}
	return eng, nil
}

// isCountQuery reports whether the single aggregate is SUM(1).
func isCountQuery(q *query.Query) bool {
	if len(q.Aggregates) != 1 {
		return false
	}
	fs := q.Aggregates[0].Factors
	return len(fs) == 1 && fs[0].IsConst && fs[0].Const == 1
}

// Compile-time checks: every engine provides the unified surface.
var (
	_ AnyEngine = (*Analysis)(nil)
	_ AnyEngine = (*CountEngine)(nil)
	_ AnyEngine = (*FloatEngine)(nil)
	_ AnyEngine = (*CovarEngine)(nil)
	_ AnyEngine = (*RangedCovarEngine)(nil)
	_ AnyEngine = (*JoinEngine)(nil)
)

package fivm_test

import (
	"strings"
	"testing"

	"repro/fivm"
	"repro/internal/ml"
	"repro/internal/query"
	"repro/internal/value"
	"repro/internal/view"
)

func openRels() []fivm.RelationSpec {
	return []fivm.RelationSpec{
		{Name: "R", Attrs: []string{"A", "B"}},
		{Name: "S", Attrs: []string{"A", "C", "D"}},
	}
}

// Open infers the engine kind from which config fields are set, and the
// returned AnyEngine drives the same lifecycle regardless of kind.
func TestOpenKindInference(t *testing.T) {
	cases := []struct {
		name string
		cfg  fivm.Config
		want fivm.Kind
	}{
		{"count from SUM(1)", fivm.Config{Relations: openRels(), Query: "SELECT SUM(1) FROM R NATURAL JOIN S"}, fivm.KindCount},
		{"float from SUM expr", fivm.Config{Relations: openRels(), Query: "SELECT SUM(B * D) FROM R NATURAL JOIN S"}, fivm.KindFloat},
		{"analysis from features", fivm.Config{Relations: openRels(), Features: []fivm.FeatureSpec{{Attr: "B"}, {Attr: "C", Categorical: true}}}, fivm.KindAnalysis},
		{"covar from attrs", fivm.Config{Relations: openRels(), Attrs: []string{"B", "D"}}, fivm.KindCovar},
		{"join from bare relations", fivm.Config{Relations: openRels()}, fivm.KindJoin},
		{"ranged forced by kind", fivm.Config{Kind: fivm.KindRangedCovar, Relations: openRels(), Attrs: []string{"B", "D"}}, fivm.KindRangedCovar},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			eng, err := fivm.Open(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if eng.Kind() != c.want {
				t.Fatalf("kind = %s, want %s", eng.Kind(), c.want)
			}
			// The shared lifecycle works identically on every kind.
			if err := eng.Init(toyData()); err != nil {
				t.Fatal(err)
			}
			if err := eng.Apply([]view.Update{{Rel: "R", Tuple: value.T("a1", 5), Mult: 1}}); err != nil {
				t.Fatal(err)
			}
			d, err := eng.BuildDelta("R", []view.Update{{Rel: "R", Tuple: value.T("a9", 9), Mult: 1}})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.ApplyBuilt("R", d); err != nil {
				t.Fatal(err)
			}
			if got := eng.RelationNames(); len(got) != 2 {
				t.Fatalf("RelationNames = %v", got)
			}
			if n, ok := eng.Arity("S"); !ok || n != 3 {
				t.Fatalf("Arity(S) = %d, %v", n, ok)
			}
			if eng.Stats().Updates == 0 {
				t.Fatal("stats not accumulating")
			}
			if eng.ViewTree() == "" || eng.M3() == "" {
				t.Fatal("empty renderings")
			}
			m := eng.PublishModel(nil)
			if m.Kind() != c.want {
				t.Fatalf("model kind = %s, want %s", m.Kind(), c.want)
			}
		})
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := fivm.Open(fivm.Config{}); err == nil {
		t.Error("no relations accepted")
	}
	if _, err := fivm.Open(fivm.Config{Kind: fivm.KindCount, Relations: openRels()}); err == nil {
		t.Error("count kind without query accepted")
	}
	if _, err := fivm.Open(fivm.Config{Kind: "bogus", Relations: openRels()}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := fivm.Open(fivm.Config{Relations: openRels(), Query: "SELECT nope"}); err == nil {
		t.Error("unparsable query accepted")
	}
	// Ambiguous configs are rejected, not resolved by precedence.
	_, err := fivm.Open(fivm.Config{
		Relations: openRels(),
		Features:  []fivm.FeatureSpec{{Attr: "B"}},
		Attrs:     []string{"B", "D"},
	})
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("Features+Attrs: err = %v, want ambiguity rejection", err)
	}
	// A label on a non-analysis engine is a misconfiguration, not a
	// silently ignored field.
	_, err = fivm.Open(fivm.Config{
		Relations: openRels(),
		Query:     "SELECT SUM(B) FROM R NATURAL JOIN S",
		Label:     "B",
	})
	if err == nil || !strings.Contains(err.Error(), "Label") {
		t.Errorf("float+Label: err = %v, want label rejection", err)
	}
	// An explicit Kind must not silently drop a workload field meant
	// for a different engine.
	_, err = fivm.Open(fivm.Config{
		Kind:      fivm.KindJoin,
		Relations: openRels(),
		Query:     "SELECT SUM(1) FROM R NATURAL JOIN S",
	})
	if err == nil || !strings.Contains(err.Error(), "not consumed") {
		t.Errorf("join+Query: err = %v, want unconsumed-field rejection", err)
	}
	// A Ridge config without a Label is never consumed.
	_, err = fivm.Open(fivm.Config{
		Relations: openRels(),
		Attrs:     []string{"B", "D"},
		Ridge:     ml.RidgeConfig{Lambda: 0.5},
	})
	if err == nil || !strings.Contains(err.Error(), "Ridge") {
		t.Errorf("covar+Ridge: err = %v, want ridge rejection", err)
	}
}

// ApplyBuilt must reject deltas of a different engine's payload type
// instead of panicking in the view layer.
func TestApplyBuiltRejectsForeignDelta(t *testing.T) {
	count, err := fivm.Open(fivm.Config{Relations: openRels(), Query: "SELECT SUM(1) FROM R NATURAL JOIN S"})
	if err != nil {
		t.Fatal(err)
	}
	flt, err := fivm.Open(fivm.Config{Relations: openRels(), Query: "SELECT SUM(B) FROM R NATURAL JOIN S"})
	if err != nil {
		t.Fatal(err)
	}
	d, err := count.BuildDelta("R", []view.Update{{Rel: "R", Tuple: value.T("a1", 1), Mult: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := flt.ApplyBuilt("R", d); err == nil {
		t.Fatal("float engine accepted a Z-ring delta")
	}
}

// The count and float constructors must reject GROUP BY attributes that
// are missing from the joined schema with a clear message — a hand-built
// query bypasses Parse's catalog validation, and without this check the
// failure surfaces as a confusing view-layer error.
func TestEnginesRejectUnknownGroupBy(t *testing.T) {
	rels := []query.Relation{
		{Name: "R", Schema: value.NewSchema("A", "B")},
	}
	qc := &query.Query{
		Aggregates: []query.Aggregate{{Factors: []query.Factor{{IsConst: true, Const: 1}}}},
		Relations:  rels,
		GroupBy:    []string{"Z"},
	}
	if _, err := fivm.NewCountEngine(qc, nil); err == nil || !strings.Contains(err.Error(), "GROUP BY attribute Z") {
		t.Fatalf("count engine: err = %v, want GROUP BY validation failure", err)
	}
	qf := &query.Query{
		Aggregates: []query.Aggregate{{Factors: []query.Factor{{Attr: "B"}}}},
		Relations:  rels,
		GroupBy:    []string{"Z"},
	}
	if _, err := fivm.NewFloatEngine(qf, nil); err == nil || !strings.Contains(err.Error(), "GROUP BY attribute Z") {
		t.Fatalf("float engine: err = %v, want GROUP BY validation failure", err)
	}
}

// The unified result-access convention: Payload never errors (ring zero
// on the empty join); typed interpreters fail with a descriptive error.
func TestEmptyJoinConvention(t *testing.T) {
	rels := openRels()
	cov, err := fivm.NewCovarEngine(rels, []string{"B", "D"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p := cov.Payload(); p != nil {
		t.Fatalf("empty covar payload = %v, want nil (ring zero)", p)
	}
	if _, err := cov.Covar(); err == nil {
		t.Fatal("Covar() on the empty join must fail")
	}
	ranged, err := fivm.NewRangedCovarEngine(rels, []string{"B", "D"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p := ranged.Payload(); p != nil {
		t.Fatalf("empty ranged payload = %v, want nil (ring zero)", p)
	}
	if _, err := ranged.Covar(); err == nil {
		t.Fatal("ranged Covar() on the empty join must fail")
	}
	if _, err := ranged.Sigma(); err == nil {
		t.Fatal("ranged Sigma() on the empty join must fail")
	}
	join, err := fivm.NewJoinEngine(rels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ts, ms := join.Tuples(); len(ts) != 0 || len(ms) != 0 {
		t.Fatal("empty join must enumerate to empty slices")
	}
}

// Published models are isolated deep copies: later maintenance must not
// leak into them, for any engine kind.
func TestPublishedModelsAreImmutable(t *testing.T) {
	cfgs := []fivm.Config{
		{Relations: openRels(), Query: "SELECT A, SUM(1) FROM R NATURAL JOIN S GROUP BY A"},
		{Relations: openRels(), Query: "SELECT SUM(B * D) FROM R NATURAL JOIN S"},
		{Relations: openRels(), Attrs: []string{"B", "D"}},
		{Relations: openRels()},
		{Relations: openRels(), Features: []fivm.FeatureSpec{{Attr: "B"}, {Attr: "D"}}, Label: "D"},
	}
	for _, cfg := range cfgs {
		eng, err := fivm.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Init(toyData()); err != nil {
			t.Fatal(err)
		}
		m := eng.PublishModel(nil)
		before := m.Count()
		if err := eng.Apply([]view.Update{{Rel: "R", Tuple: value.T("a1", 42), Mult: 1}}); err != nil {
			t.Fatal(err)
		}
		if got := m.Count(); got != before {
			t.Fatalf("%s model count changed after maintenance: %v -> %v", eng.Kind(), before, got)
		}
		fresh := eng.PublishModel(m)
		if fresh.Count() == before {
			t.Fatalf("%s fresh model did not reflect the insert", eng.Kind())
		}
	}
}

package fivm_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/fivm"
	"repro/internal/value"
	"repro/internal/view"
)

// snapshotRoundTrip writes eng's snapshot, restores it into fresh, and
// verifies both engines agree now and keep agreeing after further
// updates (equality judged by the published models' JSON rendering,
// which covers the full result for every kind).
func snapshotRoundTrip(t *testing.T, eng, fresh fivm.AnyEngine) {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := fresh.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	sameModels := func(when string) {
		t.Helper()
		a, aErr := eng.PublishModel(nil).ResultJSON()
		b, bErr := fresh.PublishModel(nil).ResultJSON()
		if (aErr == nil) != (bErr == nil) {
			t.Fatalf("%s: result errors diverge: %v vs %v", when, aErr, bErr)
		}
		if got, want := jsonString(t, b), jsonString(t, a); got != want {
			t.Fatalf("%s: restored model %s != original %s", when, got, want)
		}
	}
	sameModels("after restore")
	// Restored engines keep maintaining in lockstep.
	ups := []view.Update{
		{Rel: "R", Tuple: value.T("a3", 7), Mult: 1},
		{Rel: "S", Tuple: value.T("a3", 9, 9), Mult: 1},
	}
	if err := eng.Apply(ups); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Apply(ups); err != nil {
		t.Fatal(err)
	}
	sameModels("after further updates")
}

func jsonString(t *testing.T, v any) string {
	t.Helper()
	var b bytes.Buffer
	if err := encodeJSON(&b, v); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestSnapshotRoundTripAllKinds covers the generic codec path for every
// engine kind (Analysis has its own longer-standing test in fivm_test).
func TestSnapshotRoundTripAllKinds(t *testing.T) {
	cfgs := map[string]fivm.Config{
		"count":       {Relations: openRels(), Query: "SELECT A, SUM(1) FROM R NATURAL JOIN S GROUP BY A"},
		"float":       {Relations: openRels(), Query: "SELECT SUM(B * D) FROM R NATURAL JOIN S"},
		"covar":       {Relations: openRels(), Attrs: []string{"B", "D"}},
		"rangedcovar": {Kind: fivm.KindRangedCovar, Relations: openRels(), Attrs: []string{"B", "D"}},
		"join":        {Relations: openRels()},
		"analysis":    {Relations: openRels(), Features: []fivm.FeatureSpec{{Attr: "B"}, {Attr: "C", Categorical: true}, {Attr: "D"}}, Label: "D"},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			eng, err := fivm.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Init(toyData()); err != nil {
				t.Fatal(err)
			}
			if err := eng.Apply([]view.Update{{Rel: "R", Tuple: value.T("a2", 11), Mult: 1}}); err != nil {
				t.Fatal(err)
			}
			fresh, err := fivm.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			snapshotRoundTrip(t, eng, fresh)
		})
	}
}

// A snapshot written by one engine kind must be rejected by another:
// the codec tag in the header fails fast instead of misparsing payload
// bytes.
func TestSnapshotRejectsForeignEngineKind(t *testing.T) {
	count, err := fivm.Open(fivm.Config{Relations: openRels(), Query: "SELECT SUM(1) FROM R NATURAL JOIN S"})
	if err != nil {
		t.Fatal(err)
	}
	if err := count.Init(toyData()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := count.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	flt, err := fivm.Open(fivm.Config{Relations: openRels(), Query: "SELECT SUM(B) FROM R NATURAL JOIN S"})
	if err != nil {
		t.Fatal(err)
	}
	err = flt.ReadSnapshot(&buf)
	if err == nil || !strings.Contains(err.Error(), "codec") {
		t.Fatalf("restoring a count snapshot into a float engine: err = %v, want codec mismatch", err)
	}
}

// Same kind, different degree (e.g. an operator restarts fivm-serve
// with a changed -attrs list against an existing -state file) must also
// fail fast on the codec tag — the wire format depends on the degree.
func TestSnapshotRejectsDegreeMismatch(t *testing.T) {
	wide, err := fivm.NewCovarEngine(openRels(), []string{"B", "C", "D"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := wide.Init(toyData()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wide.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	narrow, err := fivm.NewCovarEngine(openRels(), []string{"B", "D"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = narrow.ReadSnapshot(&buf)
	if err == nil || !strings.Contains(err.Error(), "codec") {
		t.Fatalf("restoring degree-3 snapshot into degree-2 engine: err = %v, want codec mismatch", err)
	}

	// The generalized ring takes the same guard.
	an, err := fivm.NewAnalysis(fivm.AnalysisConfig{
		Relations: openRels(),
		Features:  []fivm.FeatureSpec{{Attr: "B"}, {Attr: "D"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Init(toyData()); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := an.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	an3, err := fivm.NewAnalysis(fivm.AnalysisConfig{
		Relations: openRels(),
		Features:  []fivm.FeatureSpec{{Attr: "B"}, {Attr: "C", Categorical: true}, {Attr: "D"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = an3.ReadSnapshot(&buf)
	if err == nil || !strings.Contains(err.Error(), "codec") {
		t.Fatalf("restoring 2-feature analysis snapshot into 3-feature engine: err = %v, want codec mismatch", err)
	}
}

// encodeJSON is a tiny helper kept local to the test file.
func encodeJSON(b *bytes.Buffer, v any) error {
	enc := json.NewEncoder(b)
	return enc.Encode(v)
}

package fivm

import (
	"fmt"

	"repro/internal/m3"
	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

// JoinEngine maintains the full natural-join result itself through the
// view tree, using the relational ring: every attribute is lifted to the
// singleton relation {x -> 1}, so the root payload is the join result as
// one relational value mapping result tuples to multiplicities. The
// intermediate views keep the result factorized; only the root holds the
// flat listing.
//
// The paper uses this interpretation ("factorized conjunctive query
// evaluation") to make its core performance point: maintaining model
// gradients over a join is faster than maintaining the join, because the
// join is larger and full of repeating values. Ablation A2 measures
// exactly that, pitting JoinEngine against CovarEngine on one stream.
type JoinEngine struct {
	*Engine[ring.RelVal]
	// ResultAttrs names the attribute order of result tuples, following
	// the variable order's marginalization sequence (deepest variable
	// first).
	ResultAttrs []string
}

// NewJoinEngine builds a join-maintenance engine over the given
// relations.
func NewJoinEngine(rels []RelationSpec, order *vo.Order) (*JoinEngine, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("fivm: no relations configured")
	}
	vrels := make([]vo.Rel, len(rels))
	for i, r := range rels {
		vrels[i] = vo.Rel{Name: r.Name, Schema: value.NewSchema(r.Attrs...)}
	}
	if order == nil {
		var err error
		order, err = vo.Build(vrels)
		if err != nil {
			return nil, err
		}
	}
	var rg ring.Relational
	lifts := map[string]ring.Lift[ring.RelVal]{}
	// Lift every variable to its one-hot singleton; the marginalization
	// order (post-order over the VO) fixes the tuple layout in the
	// concatenated keys.
	var attrs []string
	var post func(n *vo.Node)
	post = func(n *vo.Node) {
		for _, c := range n.Children {
			post(c)
		}
		attrs = append(attrs, n.Var)
	}
	for _, r := range order.Roots {
		post(r)
	}
	for _, a := range attrs {
		lifts[a] = func(v value.Value) ring.RelVal {
			return ring.RelVal{value.Tuple{v}.Encode(): 1}
		}
	}
	tree, err := view.New(view.Spec[ring.RelVal]{
		Ring:      rg,
		Order:     order,
		Relations: vrels,
		Lifts:     lifts,
	})
	if err != nil {
		return nil, err
	}
	e := &JoinEngine{ResultAttrs: attrs}
	e.Engine = NewEngine(KindJoin, tree, EngineOptions[ring.RelVal]{
		Codec: ring.RelValCodec{},
		Clone: ring.RelVal.Clone,
		M3:    m3.RingInfo{Name: "relation"},
		Publish: func(Model) Model {
			frozen := e.Engine.ClonePayload()
			return &TableModel{
				EngineKind: KindJoin,
				build:      func() ([]TableRow, float64) { return sortedRelRows(frozen) },
			}
		},
	})
	return e, nil
}

// Result returns the maintained join result: a relational value mapping
// each result tuple (decodable with value.DecodeTuple; attribute order
// is NOT ResultAttrs order but the per-tuple lift application order —
// use Tuples for a decoded view). It shadows the generic Engine.Result
// (the result relation) with the join-shaped view.
func (e *JoinEngine) Result() ring.RelVal { return e.Engine.Payload() }

// Size returns the number of distinct tuples in the maintained join.
func (e *JoinEngine) Size() int { return len(e.Engine.Payload()) }

// Tuples decodes the maintained join result into tuples with
// multiplicities, in unspecified order. Per the package convention an
// empty join yields empty slices, not an error.
func (e *JoinEngine) Tuples() ([]value.Tuple, []float64) {
	res := e.Result()
	ts := make([]value.Tuple, 0, len(res))
	ms := make([]float64, 0, len(res))
	for k, m := range res {
		ts = append(ts, value.MustDecodeTuple(k))
		ms = append(ms, m)
	}
	return ts, ms
}

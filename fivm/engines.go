package fivm

import (
	"fmt"
	"strings"

	"repro/internal/m3"
	"repro/internal/query"
	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

// validateGroupBy fails fast when a GROUP BY attribute is missing from
// the joined schema — otherwise the error surfaces later as a confusing
// "free variable not in the variable order" from the view layer.
// Queries produced by Parse are already validated against a catalog;
// this guards hand-built query.Query values too.
func validateGroupBy(q *query.Query) error {
	attrs := value.NewSchema()
	names := make([]string, len(q.Relations))
	for i, r := range q.Relations {
		attrs = attrs.Union(r.Schema)
		names[i] = r.Name
	}
	for _, g := range q.GroupBy {
		if !attrs.Has(g) {
			return fmt.Errorf("fivm: GROUP BY attribute %s not in the schema of the joined relations (%s)", g, strings.Join(names, ", "))
		}
	}
	return nil
}

// CountEngine maintains a COUNT (SUM(1)) query over a natural join,
// optionally grouped, using the Z ring. It is the simplest F-IVM
// instantiation: payloads are tuple multiplicities.
type CountEngine struct {
	*Engine[int64]
	Query *query.Query
}

// NewCountEngine compiles a parsed SUM(1) query (with optional GROUP BY)
// into a Z-ring view tree. A nil order derives one with the greedy
// heuristic.
func NewCountEngine(q *query.Query, order *vo.Order) (*CountEngine, error) {
	if len(q.Aggregates) != 1 {
		return nil, fmt.Errorf("fivm: count engine needs exactly one aggregate, got %d", len(q.Aggregates))
	}
	agg := q.Aggregates[0]
	if len(agg.Factors) != 1 || !agg.Factors[0].IsConst || agg.Factors[0].Const != 1 {
		return nil, fmt.Errorf("fivm: count engine needs SUM(1), got %v", agg)
	}
	if err := validateGroupBy(q); err != nil {
		return nil, err
	}
	tree, err := view.New(view.Spec[int64]{
		Ring:      ring.Ints{},
		Order:     order,
		Relations: q.VORels(),
		Free:      q.GroupBy,
	})
	if err != nil {
		return nil, err
	}
	e := &CountEngine{Query: q}
	e.Engine = NewEngine(KindCount, tree, EngineOptions[int64]{
		Codec:   ring.IntCodec{},
		M3:      m3.RingInfo{Name: "long"},
		Publish: func(Model) Model { return tableModel(e.Engine, func(v int64) float64 { return float64(v) }) },
	})
	return e, nil
}

// FloatEngine maintains one SUM aggregate of a product of per-attribute
// functions over a natural join using the float ring, e.g.
// SUM(B * sq(C)) or SUM(B * D) GROUP BY A.
type FloatEngine struct {
	*Engine[float64]
	Query *query.Query
}

// floatFuncs is the registry of factor functions for the float ring.
var floatFuncs = map[string]func(value.Value) float64{
	"":   ring.IdentityLift,
	"id": ring.IdentityLift,
	"sq": ring.SquareLift,
}

// NewFloatEngine compiles a parsed single-aggregate query into a
// float-ring view tree. Each attribute may appear in at most one factor
// (write SUM(sq(B)) rather than SUM(B * B)); constant factors scale the
// aggregate. All factors are validated before the view tree is built. A
// nil order derives one with the greedy heuristic.
func NewFloatEngine(q *query.Query, order *vo.Order) (*FloatEngine, error) {
	if len(q.Aggregates) != 1 {
		return nil, fmt.Errorf("fivm: float engine needs exactly one aggregate, got %d", len(q.Aggregates))
	}
	if err := validateGroupBy(q); err != nil {
		return nil, err
	}
	agg := q.Aggregates[0]
	lifts := map[string]ring.Lift[float64]{}
	scale := 1.0
	for _, f := range agg.Factors {
		if f.IsConst {
			scale *= f.Const
			continue
		}
		fn, ok := floatFuncs[f.Func]
		if !ok {
			return nil, fmt.Errorf("fivm: unknown factor function %q (have id, sq)", f.Func)
		}
		if _, dup := lifts[f.Attr]; dup {
			return nil, fmt.Errorf("fivm: attribute %s appears in two factors; compose functions instead", f.Attr)
		}
		lifts[f.Attr] = fn
	}
	if scale != 1 {
		if len(lifts) == 0 {
			return nil, fmt.Errorf("fivm: pure-constant aggregate SUM(%v): use SUM(1) with the count engine and scale externally", scale)
		}
		// Fold the constant into one of the lifts by wrapping it.
		for attr, fn := range lifts {
			inner := fn
			lifts[attr] = func(v value.Value) float64 { return scale * inner(v) }
			break
		}
	}
	tree, err := view.New(view.Spec[float64]{
		Ring:      ring.Floats{},
		Order:     order,
		Relations: q.VORels(),
		Lifts:     lifts,
		Free:      q.GroupBy,
	})
	if err != nil {
		return nil, err
	}
	e := &FloatEngine{Query: q}
	e.Engine = NewEngine(KindFloat, tree, EngineOptions[float64]{
		Codec: ring.FloatCodec{},
		M3:    m3.RingInfo{Name: "double"},
		Publish: func(Model) Model {
			return tableModel(e.Engine, func(v float64) float64 { return v })
		},
	})
	return e, nil
}

// CovarEngine maintains the scalar degree-m COVAR matrix over
// all-continuous attributes — the cheaper sibling of Analysis for
// workloads without categorical features.
type CovarEngine struct {
	*Engine[*ring.Covar]
	Ring  ring.CovarRing
	Attrs []string
}

// NewCovarEngine builds a scalar COVAR engine over the given continuous
// attributes of the joined relations.
func NewCovarEngine(rels []RelationSpec, attrs []string, order *vo.Order) (*CovarEngine, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("fivm: no aggregate attributes")
	}
	vrels := make([]vo.Rel, len(rels))
	schema := value.NewSchema()
	for i, r := range rels {
		vrels[i] = vo.Rel{Name: r.Name, Schema: value.NewSchema(r.Attrs...)}
		schema = schema.Union(vrels[i].Schema)
	}
	rg := ring.NewCovarRing(len(attrs))
	lifts := map[string]ring.Lift[*ring.Covar]{}
	idx := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if !schema.Has(a) {
			return nil, fmt.Errorf("fivm: aggregate attribute %s not in any relation", a)
		}
		if _, dup := lifts[a]; dup {
			return nil, fmt.Errorf("fivm: attribute %s listed twice", a)
		}
		lifts[a] = rg.Lift(i)
		idx[a] = i
	}
	tree, err := view.New(view.Spec[*ring.Covar]{
		Ring:      rg,
		Order:     order,
		Relations: vrels,
		Lifts:     lifts,
	})
	if err != nil {
		return nil, err
	}
	cp := make([]string, len(attrs))
	copy(cp, attrs)
	e := &CovarEngine{Ring: rg, Attrs: cp}
	e.Engine = NewEngine(KindCovar, tree, EngineOptions[*ring.Covar]{
		Codec: ring.CovarCodec{Ring: rg},
		Clone: (*ring.Covar).Clone,
		M3: m3.RingInfo{
			Name: fmt.Sprintf("RingCofactor<double, %d>", len(attrs)),
			LiftIndexOf: func(v string) int {
				if i, ok := idx[v]; ok {
					return i
				}
				return -1
			},
		},
		Publish: func(Model) Model {
			return &CovarModel{EngineKind: KindCovar, Attrs: cp, Payload: e.Payload().Clone()}
		},
	})
	return e, nil
}

// Covar returns the compound aggregate, failing on the empty join per
// the package's result-access convention. Use Payload for the raw
// (possibly nil) value.
func (e *CovarEngine) Covar() (*ring.Covar, error) {
	p := e.Payload()
	if p == nil {
		return nil, fmt.Errorf("fivm: empty join result")
	}
	return p, nil
}

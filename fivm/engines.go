package fivm

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

// CountEngine maintains a COUNT (SUM(1)) query over a natural join,
// optionally grouped, using the Z ring. It is the simplest F-IVM
// instantiation: payloads are tuple multiplicities.
type CountEngine struct {
	Tree  *view.Tree[int64]
	Query *query.Query
}

// NewCountEngine compiles a parsed SUM(1) query (with optional GROUP BY)
// into a Z-ring view tree.
func NewCountEngine(q *query.Query) (*CountEngine, error) {
	if len(q.Aggregates) != 1 {
		return nil, fmt.Errorf("fivm: count engine needs exactly one aggregate, got %d", len(q.Aggregates))
	}
	agg := q.Aggregates[0]
	if len(agg.Factors) != 1 || !agg.Factors[0].IsConst || agg.Factors[0].Const != 1 {
		return nil, fmt.Errorf("fivm: count engine needs SUM(1), got %v", agg)
	}
	tree, err := view.New(view.Spec[int64]{
		Ring:      ring.Ints{},
		Relations: q.VORels(),
		Free:      q.GroupBy,
	})
	if err != nil {
		return nil, err
	}
	return &CountEngine{Tree: tree, Query: q}, nil
}

// FloatEngine maintains one SUM aggregate of a product of per-attribute
// functions over a natural join using the float ring, e.g.
// SUM(B * sq(C)) or SUM(B * D) GROUP BY A.
type FloatEngine struct {
	Tree  *view.Tree[float64]
	Query *query.Query
}

// floatFuncs is the registry of factor functions for the float ring.
var floatFuncs = map[string]func(value.Value) float64{
	"":   ring.IdentityLift,
	"id": ring.IdentityLift,
	"sq": ring.SquareLift,
}

// NewFloatEngine compiles a parsed single-aggregate query into a
// float-ring view tree. Each attribute may appear in at most one factor
// (write SUM(sq(B)) rather than SUM(B * B)); constant factors scale the
// aggregate. All factors are validated before the view tree is built.
func NewFloatEngine(q *query.Query) (*FloatEngine, error) {
	if len(q.Aggregates) != 1 {
		return nil, fmt.Errorf("fivm: float engine needs exactly one aggregate, got %d", len(q.Aggregates))
	}
	agg := q.Aggregates[0]
	lifts := map[string]ring.Lift[float64]{}
	scale := 1.0
	for _, f := range agg.Factors {
		if f.IsConst {
			scale *= f.Const
			continue
		}
		fn, ok := floatFuncs[f.Func]
		if !ok {
			return nil, fmt.Errorf("fivm: unknown factor function %q (have id, sq)", f.Func)
		}
		if _, dup := lifts[f.Attr]; dup {
			return nil, fmt.Errorf("fivm: attribute %s appears in two factors; compose functions instead", f.Attr)
		}
		lifts[f.Attr] = fn
	}
	if scale != 1 {
		if len(lifts) == 0 {
			return nil, fmt.Errorf("fivm: pure-constant aggregate SUM(%v): use SUM(1) with the count engine and scale externally", scale)
		}
		// Fold the constant into one of the lifts by wrapping it.
		for attr, fn := range lifts {
			inner := fn
			lifts[attr] = func(v value.Value) float64 { return scale * inner(v) }
			break
		}
	}
	tree, err := view.New(view.Spec[float64]{
		Ring:      ring.Floats{},
		Relations: q.VORels(),
		Lifts:     lifts,
		Free:      q.GroupBy,
	})
	if err != nil {
		return nil, err
	}
	return &FloatEngine{Tree: tree, Query: q}, nil
}

// CovarEngine maintains the scalar degree-m COVAR matrix over
// all-continuous attributes — the cheaper sibling of Analysis for
// workloads without categorical features.
type CovarEngine struct {
	Tree  *view.Tree[*ring.Covar]
	Ring  ring.CovarRing
	Attrs []string
}

// NewCovarEngine builds a scalar COVAR engine over the given continuous
// attributes of the joined relations.
func NewCovarEngine(rels []RelationSpec, attrs []string, order *vo.Order) (*CovarEngine, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("fivm: no aggregate attributes")
	}
	vrels := make([]vo.Rel, len(rels))
	schema := value.NewSchema()
	for i, r := range rels {
		vrels[i] = vo.Rel{Name: r.Name, Schema: value.NewSchema(r.Attrs...)}
		schema = schema.Union(vrels[i].Schema)
	}
	rg := ring.NewCovarRing(len(attrs))
	lifts := map[string]ring.Lift[*ring.Covar]{}
	for i, a := range attrs {
		if !schema.Has(a) {
			return nil, fmt.Errorf("fivm: aggregate attribute %s not in any relation", a)
		}
		if _, dup := lifts[a]; dup {
			return nil, fmt.Errorf("fivm: attribute %s listed twice", a)
		}
		lifts[a] = rg.Lift(i)
	}
	tree, err := view.New(view.Spec[*ring.Covar]{
		Ring:      rg,
		Order:     order,
		Relations: vrels,
		Lifts:     lifts,
	})
	if err != nil {
		return nil, err
	}
	cp := make([]string, len(attrs))
	copy(cp, attrs)
	return &CovarEngine{Tree: tree, Ring: rg, Attrs: cp}, nil
}

// Payload returns the maintained scalar COVAR compound aggregate.
func (e *CovarEngine) Payload() *ring.Covar { return e.Tree.ResultPayload() }

package fivm

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ml"
	"repro/internal/ring"
	"repro/internal/value"
)

// AnalysisModel is the Model an Analysis engine publishes: a deep clone
// of the generalized COVAR payload plus — when a Label is configured —
// the ridge regression refit against it. Every field is a deep copy or
// derived purely from one, so any number of readers may use it
// concurrently without coordination.
type AnalysisModel struct {
	// Label is the ridge model's target attribute ("" when fitting is
	// disabled).
	Label string
	// Payload is a deep clone of the maintained compound aggregate
	// (nil when the join is empty).
	Payload *ring.RelCovar
	// Features is the payload indexing metadata.
	Features []ml.Feature
	// BinWidths maps binned features to their width: their one-hot
	// categories are bin indexes, so Predict inputs must be binned the
	// same way before matching.
	BinWidths map[string]float64
	// Sigma and Model are the covariance matrix and ridge model fit
	// against this payload; nil when fitting is disabled or failed
	// (FitErr carries the reason).
	Sigma  *ml.SigmaMatrix
	Model  *ml.RidgeModel
	FitErr string
}

// Kind returns KindAnalysis.
func (m *AnalysisModel) Kind() Kind { return KindAnalysis }

// Count returns the number of tuples in the maintained join (SUM(1)).
func (m *AnalysisModel) Count() float64 { return m.Payload.Count().Scalar() }

// Predict evaluates the ridge model on the given feature values
// (attribute name -> value). Continuous features coerce to float;
// categorical features one-hot match against the categories observed at
// publish time (an unseen category contributes zero to every column).
// Entries for the label attribute are ignored; all other feature
// attributes must be present.
func (m *AnalysisModel) Predict(x map[string]value.Value) (float64, error) {
	if m.Model == nil {
		if m.FitErr != "" {
			return 0, fmt.Errorf("fivm: no model: %s", m.FitErr)
		}
		return 0, errors.New("fivm: model fitting is disabled (no label configured)")
	}
	vec := make([]float64, m.Sigma.Dim())
	for i, col := range m.Sigma.Cols {
		if col.Attr == m.Label {
			continue
		}
		v, ok := x[col.Attr]
		if !ok {
			return 0, fmt.Errorf("fivm: missing feature %s", col.Attr)
		}
		if col.IsCat {
			if w := m.BinWidths[col.Attr]; w > 0 {
				v = value.Int(binFor(v.AsFloat(), w))
			}
			if v.Equal(col.Category) {
				vec[i] = 1
			}
		} else {
			vec[i] = v.AsFloat()
		}
	}
	return m.Model.Predict(vec), nil
}

// ResultJSON renders the fitted ridge model (weights by column label).
// It fails when fitting is disabled or failed — the serving layer turns
// that into an HTTP error.
func (m *AnalysisModel) ResultJSON() (any, error) {
	if m.Model == nil {
		if m.FitErr != "" {
			return nil, errors.New(m.FitErr)
		}
		return nil, errors.New("model fitting is disabled (no label configured)")
	}
	type weightJSON struct {
		Column string  `json:"column"`
		Weight float64 `json:"weight"`
	}
	weights := make([]weightJSON, 0, m.Sigma.Dim())
	for i, col := range m.Sigma.Cols {
		if i == m.Model.LabelCol {
			continue
		}
		weights = append(weights, weightJSON{Column: col.Label(), Weight: m.Model.Weights[i]})
	}
	return map[string]any{
		"label":      m.Label,
		"count":      m.Count(),
		"intercept":  m.Model.Intercept,
		"weights":    weights,
		"converged":  m.Model.Converged,
		"iterations": m.Model.Iterations,
		"train_rmse": m.Model.TrainRMSE(m.Sigma),
	}, nil
}

// Covar converts the model payload to a dense sigma matrix (the one fit
// at publish time when available).
func (m *AnalysisModel) Covar() (*ml.SigmaMatrix, error) {
	if m.Sigma != nil {
		return m.Sigma, nil
	}
	return ml.SigmaFromRelCovar(m.Payload, m.Features)
}

// MI computes the pairwise mutual-information matrix from the model
// payload; every feature must be categorical or binned.
func (m *AnalysisModel) MI() (*ml.MIMatrix, error) {
	return ml.MIFromRelCovar(m.Payload, m.Features)
}

// ChowLiu builds the Chow-Liu tree rooted at root from the model's MI
// matrix.
func (m *AnalysisModel) ChowLiu(root string) (*ml.ChowLiuTree, error) {
	mi, err := m.MI()
	if err != nil {
		return nil, err
	}
	return ml.ChowLiu(mi, root)
}

// SelectFeatures ranks features by MI with the label and applies the
// threshold.
func (m *AnalysisModel) SelectFeatures(label string, threshold float64) ([]ml.RankedAttr, []string, error) {
	mi, err := m.MI()
	if err != nil {
		return nil, nil, err
	}
	return ml.SelectFeatures(mi, label, threshold)
}

// binFor mirrors ring.LiftBinned's discretization exactly, so Predict
// inputs land in the same bins the payload was built with.
func binFor(f, width float64) int64 {
	bin := int64(f / width)
	if f < 0 {
		bin--
	}
	return bin
}

// TableRow is one row of a TableModel: the (decoded) key tuple and the
// scalar the engine maintains for it.
type TableRow struct {
	Key   []any   `json:"key"`
	Value float64 `json:"value"`
}

// TableModel is the Model published by the count, float, and join
// engines: the maintained result as rows of (key, scalar). For count
// and float engines the keys are the GROUP BY attributes (one row with
// an empty key for ungrouped queries) and the values are the maintained
// aggregates; for the join engine the keys are result tuples and the
// values their multiplicities.
//
// Publishing freezes only a shallow clone of the result (payloads are
// immutable, so that is a full snapshot); sorting and decoding into
// rows happens lazily on the first Rows/Total/ResultJSON call, keeping
// the serving writer's publish cost independent of rendering. The lazy
// step is synchronized: concurrent readers are safe.
type TableModel struct {
	EngineKind Kind
	// Attrs names the key attributes; nil when the key layout is
	// unspecified (the join engine's tuples follow the lift application
	// order, not a declared schema).
	Attrs []string

	once  sync.Once
	build func() ([]TableRow, float64)
	rows  []TableRow
	total float64
}

func (m *TableModel) materialize() {
	m.once.Do(func() {
		if m.build != nil {
			m.rows, m.total = m.build()
			m.build = nil
		}
	})
}

// Kind identifies the publishing engine.
func (m *TableModel) Kind() Kind { return m.EngineKind }

// Rows returns the result in deterministic (sorted-key) order.
func (m *TableModel) Rows() []TableRow {
	m.materialize()
	return m.rows
}

// Total returns the sum of all row values: the join cardinality for
// count and join models, the grand aggregate total for float.
func (m *TableModel) Total() float64 {
	m.materialize()
	return m.total
}

// Count returns Total.
func (m *TableModel) Count() float64 { return m.Total() }

// ResultJSON renders the rows.
func (m *TableModel) ResultJSON() (any, error) {
	m.materialize()
	return map[string]any{
		"attrs": m.Attrs,
		"rows":  m.rows,
		"total": m.total,
	}, nil
}

// Predict always fails: aggregate engines serve no predictive model.
func (m *TableModel) Predict(map[string]value.Value) (float64, error) {
	return 0, fmt.Errorf("fivm: %s engine serves no predictive model", m.EngineKind)
}

// CovarModel is the Model published by the scalar COVAR engines: the
// degree-m compound aggregate (count, sums, products) over the named
// continuous attributes.
type CovarModel struct {
	EngineKind Kind
	// Attrs maps aggregate index -> attribute name.
	Attrs []string
	// Payload is a deep clone of the compound aggregate; nil when the
	// join is empty.
	Payload *ring.Covar
	// Err carries a widening failure (ranged engines only).
	Err string
}

// Kind identifies the publishing engine.
func (m *CovarModel) Kind() Kind { return m.EngineKind }

// Count returns the scalar count aggregate (0 on the empty join).
func (m *CovarModel) Count() float64 { return m.Payload.Count() }

// ResultJSON renders count, per-attribute sums, and the upper triangle
// of the product matrix. It fails on the empty join, following the
// package's result-access convention.
func (m *CovarModel) ResultJSON() (any, error) {
	if m.Err != "" {
		return nil, errors.New(m.Err)
	}
	if m.Payload == nil {
		return nil, errors.New("empty join result")
	}
	sums := make(map[string]float64, len(m.Attrs))
	for i, a := range m.Attrs {
		sums[a] = m.Payload.Sum(i)
	}
	type prodJSON struct {
		A string  `json:"a"`
		B string  `json:"b"`
		Q float64 `json:"q"`
	}
	prods := make([]prodJSON, 0, len(m.Attrs)*(len(m.Attrs)+1)/2)
	for i, a := range m.Attrs {
		for j := i; j < len(m.Attrs); j++ {
			prods = append(prods, prodJSON{A: a, B: m.Attrs[j], Q: m.Payload.Prod(i, j)})
		}
	}
	return map[string]any{
		"attrs":    m.Attrs,
		"count":    m.Payload.Count(),
		"sums":     sums,
		"products": prods,
	}, nil
}

// Predict always fails: COVAR engines publish statistics, not a fitted
// predictor (fit one with ml.NewRidge against Sigma).
func (m *CovarModel) Predict(map[string]value.Value) (float64, error) {
	return 0, fmt.Errorf("fivm: %s engine serves no predictive model", m.EngineKind)
}

// jsonValue converts a typed value to its natural JSON representation.
func jsonValue(v value.Value) any {
	switch v.Kind() {
	case value.KindInt:
		return v.Int()
	case value.KindFloat:
		return v.Float()
	case value.KindString:
		return v.Str()
	default:
		return nil
	}
}

// jsonTuple converts a tuple to a JSON-ready slice.
func jsonTuple(t value.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		out[i] = jsonValue(v)
	}
	return out
}

// sortedRelRows decodes a relational-ring value into sorted TableRows.
func sortedRelRows(rel ring.RelVal) ([]TableRow, float64) {
	keys := make([]string, 0, len(rel))
	for k := range rel {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([]TableRow, 0, len(keys))
	var total float64
	for _, k := range keys {
		rows = append(rows, TableRow{Key: jsonTuple(value.MustDecodeTuple(k)), Value: rel[k]})
		total += rel[k]
	}
	return rows, total
}

package fivm_test

import (
	"fmt"
	"log"

	"repro/fivm"
	"repro/internal/ml"
	"repro/internal/value"
	"repro/internal/view"
)

// Example reproduces the paper's running query — SUM(gB(B)*gC(C)*gD(D))
// over R(A,B) ⋈ S(A,C,D) — with categorical C, showing bulk load,
// payload inspection, and incremental maintenance under a delete.
func Example() {
	an, err := fivm.NewAnalysis(fivm.AnalysisConfig{
		Relations: []fivm.RelationSpec{
			{Name: "R", Attrs: []string{"A", "B"}},
			{Name: "S", Attrs: []string{"A", "C", "D"}},
		},
		Features: []fivm.FeatureSpec{
			{Attr: "B"},
			{Attr: "C", Categorical: true},
			{Attr: "D"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	err = an.Init(map[string][]value.Tuple{
		"R": {value.T("a1", 1), value.T("a2", 2)},
		"S": {value.T("a1", 1, 1), value.T("a1", 2, 3), value.T("a2", 2, 2)},
	})
	if err != nil {
		log.Fatal(err)
	}
	p := an.Payload()
	fmt.Println("count:", p.Count())
	fmt.Println("s_C:  ", p.Sum(1))
	fmt.Println("Q_BC: ", p.Prod(0, 1))

	// A delete is an update with negative multiplicity.
	err = an.Apply([]view.Update{{Rel: "S", Tuple: value.T("a1", 2, 3), Mult: -1}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after delete:", an.Payload().Count())
	// Output:
	// count: {()->3}
	// s_C:   {(1)->1, (2)->2}
	// Q_BC:  {(1)->1, (2)->3}
	// after delete: {()->2}
}

// ExampleAnalysis_Ridge fits a ridge regression from the maintained
// COVAR matrix: the training set is never materialized.
func ExampleAnalysis_Ridge() {
	an, err := fivm.NewAnalysis(fivm.AnalysisConfig{
		Relations: []fivm.RelationSpec{{Name: "T", Attrs: []string{"id", "x", "y"}}},
		Features:  []fivm.FeatureSpec{{Attr: "x"}, {Attr: "y"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	// y = 2x exactly.
	var rows []value.Tuple
	for i := 0; i < 10; i++ {
		rows = append(rows, value.T(i, i, 2*i))
	}
	if err := an.Init(map[string][]value.Tuple{"T": rows}); err != nil {
		log.Fatal(err)
	}
	model, sigma, err := an.Ridge("y", nil, ml.RidgeConfig{
		Lambda: 1e-9, LearningRate: 0.1, MaxIters: 20000, Tolerance: 1e-12, Normalize: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("θ_x ≈ %.3f, RMSE ≈ %.3f\n", model.Weights[sigma.ColumnsOf("x")[0]], model.TrainRMSE(sigma))
	// Output:
	// θ_x ≈ 2.000, RMSE ≈ 0.000
}

// ExampleNewCountEngine compiles a SQL-subset query into a Z-ring view
// tree that maintains a grouped count.
func ExampleNewCountEngine() {
	cat := fivm.NewCatalog()
	if err := cat.AddRelation("R", "A", "B"); err != nil {
		log.Fatal(err)
	}
	q, err := fivm.Parse(cat, "SELECT A, SUM(1) FROM R GROUP BY A")
	if err != nil {
		log.Fatal(err)
	}
	eng, err := fivm.NewCountEngine(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	err = eng.Init(map[string][]value.Tuple{
		"R": {value.T("a1", 1), value.T("a1", 2), value.T("a2", 3)},
	})
	if err != nil {
		log.Fatal(err)
	}
	eng.Result().EachSorted(func(t value.Tuple, c int64) {
		fmt.Printf("%v -> %d\n", t, c)
	})
	// Output:
	// (a1) -> 2
	// (a2) -> 1
}

// Package fivm is the public API of the F-IVM reproduction: real-time
// analytics over fast-evolving relational data. It wires together the
// internal substrates — ring library, variable orders, view trees — into
// the workflows the paper demonstrates:
//
//   - Analysis: maintain the generalized COVAR matrix (continuous +
//     categorical attributes) or mutual-information count tables over a
//     natural join under inserts and deletes, and derive ridge linear
//     regression, model selection, and Chow-Liu trees from the payload.
//   - Count / Float engines: maintain classic SUM aggregates parsed from
//     a small SQL subset.
//
// A minimal session:
//
//	an, _ := fivm.NewAnalysis(fivm.AnalysisConfig{
//	    Relations: []fivm.RelationSpec{{Name: "R", Attrs: []string{"A", "B"}}, ...},
//	    Features:  []fivm.FeatureSpec{{Attr: "B"}, {Attr: "C", Categorical: true}},
//	})
//	an.Init(initialTuples)
//	an.Apply(updates)          // inserts and deletes
//	sigma, _ := an.Covar()     // feeds ml.RidgeModel
package fivm

import (
	"fmt"

	"repro/internal/m3"
	"repro/internal/ml"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

// RelationSpec declares one input relation of the join.
type RelationSpec struct {
	Name  string
	Attrs []string
}

// FeatureSpec declares one attribute participating in the compound
// aggregate. Exactly one interpretation applies:
//
//   - Categorical false, BinWidth 0: continuous — scalar SUM aggregates.
//   - Categorical true: one-hot encoded via the relational ring.
//   - BinWidth > 0: continuous values discretized into equi-width bins
//     and treated as categorical (used for MI over continuous data).
type FeatureSpec struct {
	Attr        string
	Categorical bool
	BinWidth    float64
}

// AnalysisConfig configures an Analysis engine.
type AnalysisConfig struct {
	Relations []RelationSpec
	Features  []FeatureSpec
	// Order optionally supplies a hand-built variable order; when nil
	// one is derived with the greedy heuristic.
	Order *vo.Order
}

// Analysis maintains the generalized degree-m COVAR payload over the
// natural join of the configured relations. It is not safe for
// concurrent use.
type Analysis struct {
	tree  *view.Tree[*ring.RelCovar]
	ring  ring.RelCovarRing
	feats []ml.Feature
	specs []FeatureSpec
}

// NewAnalysis builds the engine: degree-m ring (m = len(Features)),
// per-feature lifts, variable order, and empty view tree.
func NewAnalysis(cfg AnalysisConfig) (*Analysis, error) {
	if len(cfg.Features) == 0 {
		return nil, fmt.Errorf("fivm: no features configured")
	}
	if len(cfg.Relations) == 0 {
		return nil, fmt.Errorf("fivm: no relations configured")
	}
	rels := make([]vo.Rel, len(cfg.Relations))
	attrs := value.NewSchema()
	for i, r := range cfg.Relations {
		rels[i] = vo.Rel{Name: r.Name, Schema: value.NewSchema(r.Attrs...)}
		attrs = attrs.Union(rels[i].Schema)
	}
	m := len(cfg.Features)
	rg := ring.NewRelCovarRing(m)
	lifts := make(map[string]ring.Lift[*ring.RelCovar], m)
	feats := make([]ml.Feature, m)
	for i, f := range cfg.Features {
		if !attrs.Has(f.Attr) {
			return nil, fmt.Errorf("fivm: feature %s not in any relation", f.Attr)
		}
		if _, dup := lifts[f.Attr]; dup {
			return nil, fmt.Errorf("fivm: feature %s listed twice", f.Attr)
		}
		switch {
		case f.BinWidth > 0:
			lifts[f.Attr] = rg.LiftBinned(i, f.BinWidth)
			feats[i] = ml.Feature{Name: f.Attr, Categorical: true, Index: i}
		case f.Categorical:
			lifts[f.Attr] = rg.LiftCategorical(i)
			feats[i] = ml.Feature{Name: f.Attr, Categorical: true, Index: i}
		default:
			lifts[f.Attr] = rg.LiftContinuous(i)
			feats[i] = ml.Feature{Name: f.Attr, Categorical: false, Index: i}
		}
	}
	tree, err := view.New(view.Spec[*ring.RelCovar]{
		Ring:      rg,
		Order:     cfg.Order,
		Relations: rels,
		Lifts:     lifts,
	})
	if err != nil {
		return nil, err
	}
	return &Analysis{tree: tree, ring: rg, feats: feats, specs: cfg.Features}, nil
}

// Init bulk-loads the initial database and evaluates all views.
func (a *Analysis) Init(data map[string][]value.Tuple) error { return a.tree.Init(data) }

// Apply maintains the payload under a batch of tuple-level updates
// (Mult > 0 inserts, < 0 deletes).
func (a *Analysis) Apply(ups []view.Update) error { return a.tree.ApplyUpdates(ups) }

// ApplyDelta maintains the payload under a prebuilt delta relation.
func (a *Analysis) ApplyDelta(rel string, d *relation.Map[*ring.RelCovar]) error {
	return a.tree.ApplyDelta(rel, d)
}

// Payload returns the maintained compound aggregate (nil when the join
// is empty).
func (a *Analysis) Payload() *ring.RelCovar { return a.tree.ResultPayload() }

// ClonePayload returns a deep copy of the maintained compound aggregate.
// The clone shares nothing with the engine, so a snapshot publisher can
// hand it to concurrent readers while the engine keeps applying deltas.
func (a *Analysis) ClonePayload() *ring.RelCovar { return a.tree.ResultPayload().Clone() }

// CloneView returns a deep copy of the maintained result view (keyed by
// the query's free variables) with every payload cloned. Like
// ClonePayload it shares nothing with the engine.
func (a *Analysis) CloneView() *relation.Map[*ring.RelCovar] {
	res := a.tree.Result()
	out := relation.New[*ring.RelCovar](res.Schema())
	res.Each(func(t value.Tuple, p *ring.RelCovar) { out.Set(t, p.Clone()) })
	return out
}

// DeltaFor builds a delta relation for rel from tuple-level updates;
// combined with view.Coalesce it lets an ingestion layer prepare batch
// deltas off the maintenance thread and apply them with ApplyDelta. It
// only reads immutable tree metadata, so it is safe to call concurrently
// with maintenance.
func (a *Analysis) DeltaFor(rel string, ups []view.Update) (*relation.Map[*ring.RelCovar], error) {
	return a.tree.DeltaFor(rel, ups)
}

// RelationNames returns the input relation names, sorted.
func (a *Analysis) RelationNames() []string { return a.tree.RelationNames() }

// Features returns the payload indexing metadata.
func (a *Analysis) Features() []ml.Feature { return a.feats }

// FeatureSpecs returns a copy of the configured feature specs —
// unlike Features it preserves BinWidth, which callers interpreting
// binned one-hot categories (keyed by bin index, not raw value) need.
func (a *Analysis) FeatureSpecs() []FeatureSpec {
	return append([]FeatureSpec(nil), a.specs...)
}

// Covar converts the payload to a dense one-hot-expanded SigmaMatrix
// for the regression solver.
func (a *Analysis) Covar() (*ml.SigmaMatrix, error) {
	return ml.SigmaFromRelCovar(a.Payload(), a.feats)
}

// MI computes the pairwise mutual-information matrix; every feature
// must be categorical or binned.
func (a *Analysis) MI() (*ml.MIMatrix, error) {
	return ml.MIFromRelCovar(a.Payload(), a.feats)
}

// SelectFeatures ranks features by MI with the label and applies the
// threshold — the Model Selection tab.
func (a *Analysis) SelectFeatures(label string, threshold float64) ([]ml.RankedAttr, []string, error) {
	mi, err := a.MI()
	if err != nil {
		return nil, nil, err
	}
	return ml.SelectFeatures(mi, label, threshold)
}

// ChowLiu builds the Chow-Liu tree rooted at root — the Chow-Liu Tree
// tab.
func (a *Analysis) ChowLiu(root string) (*ml.ChowLiuTree, error) {
	mi, err := a.MI()
	if err != nil {
		return nil, err
	}
	return ml.ChowLiu(mi, root)
}

// Ridge fits (or re-converges, when model is non-nil) a ridge linear
// regression predicting label from the other features — the Regression
// tab. It returns the model and the sigma matrix it was fit against.
func (a *Analysis) Ridge(label string, model *ml.RidgeModel, cfg ml.RidgeConfig) (*ml.RidgeModel, *ml.SigmaMatrix, error) {
	return RidgeFromPayload(a.Payload(), a.feats, label, model, cfg)
}

// RidgeFromPayload fits (or re-converges, when model is non-nil) a
// ridge regression against any COVAR payload — Analysis.Ridge uses the
// live payload; the serving layer uses immutable snapshot clones. The
// passed model is mutated in place when its dimensions still match.
func RidgeFromPayload(payload *ring.RelCovar, feats []ml.Feature, label string, model *ml.RidgeModel, cfg ml.RidgeConfig) (*ml.RidgeModel, *ml.SigmaMatrix, error) {
	sigma, err := ml.SigmaFromRelCovar(payload, feats)
	if err != nil {
		return nil, nil, err
	}
	cols := sigma.ColumnsOf(label)
	if len(cols) != 1 {
		return nil, nil, fmt.Errorf("fivm: label %s must be a single continuous column (got %d columns)", label, len(cols))
	}
	if model == nil || len(model.Weights) != sigma.Dim() {
		// Category set drifted (columns appeared/disappeared): restart.
		// A production system would remap surviving columns; restarting
		// preserves correctness and matches the demo behaviour.
		model = ml.NewRidge(sigma, cols[0])
	}
	model.LabelCol = cols[0]
	if err := model.Fit(sigma, cfg); err != nil {
		return nil, nil, err
	}
	return model, sigma, nil
}

// ViewTree renders the maintained view tree — the Maintenance Strategy
// tab's left pane.
func (a *Analysis) ViewTree() string {
	return m3.Render(a.tree, a.m3Info()).TreeDrawing
}

// M3 renders the per-view M3 code — the Maintenance Strategy tab's
// right pane.
func (a *Analysis) M3() string {
	return m3.Render(a.tree, a.m3Info()).String()
}

func (a *Analysis) m3Info() m3.RingInfo {
	idx := make(map[string]int, len(a.specs))
	for i, f := range a.specs {
		idx[f.Attr] = i
	}
	return m3.RingInfo{
		Name: fmt.Sprintf("RingCofactor<double, %d>", len(a.specs)),
		LiftIndexOf: func(v string) int {
			if i, ok := idx[v]; ok {
				return i
			}
			return -1
		},
	}
}

// Stats exposes maintenance counters.
func (a *Analysis) Stats() view.Stats { return a.tree.Stats() }

// Tree exposes the underlying view tree for advanced inspection.
func (a *Analysis) Tree() *view.Tree[*ring.RelCovar] { return a.tree }

// NewCatalog re-exports query catalog construction for the SQL surface.
func NewCatalog() *query.Catalog { return query.NewCatalog() }

// Parse re-exports the SQL-subset parser.
func Parse(c *query.Catalog, src string) (*query.Query, error) { return query.Parse(c, src) }

package fivm

import (
	"fmt"

	"repro/internal/m3"
	"repro/internal/ml"
	"repro/internal/query"
	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

// RelationSpec declares one input relation of the join.
type RelationSpec struct {
	Name  string
	Attrs []string
}

// FeatureSpec declares one attribute participating in the compound
// aggregate. Exactly one interpretation applies:
//
//   - Categorical false, BinWidth 0: continuous — scalar SUM aggregates.
//   - Categorical true: one-hot encoded via the relational ring.
//   - BinWidth > 0: continuous values discretized into equi-width bins
//     and treated as categorical (used for MI over continuous data).
type FeatureSpec struct {
	Attr        string
	Categorical bool
	BinWidth    float64
}

// AnalysisConfig configures an Analysis engine.
type AnalysisConfig struct {
	Relations []RelationSpec
	Features  []FeatureSpec
	// Order optionally supplies a hand-built variable order; when nil
	// one is derived with the greedy heuristic.
	Order *vo.Order
	// Label optionally names the continuous feature the published
	// AnalysisModel predicts (see PublishModel); empty disables ridge
	// fitting in published models. Explicit Ridge calls are unaffected.
	Label string
	// Ridge configures the published model's solver; the zero value
	// means ml.DefaultRidgeConfig().
	Ridge ml.RidgeConfig
}

// Analysis maintains the generalized degree-m COVAR payload over the
// natural join of the configured relations — the flagship instantiation
// of Engine over the relational-COVAR ring. It is not safe for
// concurrent use.
type Analysis struct {
	*Engine[*ring.RelCovar]
	ring      ring.RelCovarRing
	feats     []ml.Feature
	specs     []FeatureSpec
	label     string
	ridgeCfg  ml.RidgeConfig
	binWidths map[string]float64
}

// NewAnalysis builds the engine: degree-m ring (m = len(Features)),
// per-feature lifts, variable order, and empty view tree.
func NewAnalysis(cfg AnalysisConfig) (*Analysis, error) {
	if len(cfg.Features) == 0 {
		return nil, fmt.Errorf("fivm: no features configured")
	}
	if len(cfg.Relations) == 0 {
		return nil, fmt.Errorf("fivm: no relations configured")
	}
	rels := make([]vo.Rel, len(cfg.Relations))
	attrs := value.NewSchema()
	for i, r := range cfg.Relations {
		rels[i] = vo.Rel{Name: r.Name, Schema: value.NewSchema(r.Attrs...)}
		attrs = attrs.Union(rels[i].Schema)
	}
	m := len(cfg.Features)
	rg := ring.NewRelCovarRing(m)
	lifts := make(map[string]ring.Lift[*ring.RelCovar], m)
	feats := make([]ml.Feature, m)
	binWidths := make(map[string]float64)
	labelOK := false
	for i, f := range cfg.Features {
		if !attrs.Has(f.Attr) {
			return nil, fmt.Errorf("fivm: feature %s not in any relation", f.Attr)
		}
		if _, dup := lifts[f.Attr]; dup {
			return nil, fmt.Errorf("fivm: feature %s listed twice", f.Attr)
		}
		switch {
		case f.BinWidth > 0:
			lifts[f.Attr] = rg.LiftBinned(i, f.BinWidth)
			feats[i] = ml.Feature{Name: f.Attr, Categorical: true, Index: i}
			binWidths[f.Attr] = f.BinWidth
		case f.Categorical:
			lifts[f.Attr] = rg.LiftCategorical(i)
			feats[i] = ml.Feature{Name: f.Attr, Categorical: true, Index: i}
		default:
			lifts[f.Attr] = rg.LiftContinuous(i)
			feats[i] = ml.Feature{Name: f.Attr, Categorical: false, Index: i}
		}
		if f.Attr == cfg.Label {
			if feats[i].Categorical {
				return nil, fmt.Errorf("fivm: label %s is categorical; ridge needs a continuous label", cfg.Label)
			}
			labelOK = true
		}
	}
	if cfg.Label != "" && !labelOK {
		return nil, fmt.Errorf("fivm: label %s is not a configured feature", cfg.Label)
	}
	tree, err := view.New(view.Spec[*ring.RelCovar]{
		Ring:      rg,
		Order:     cfg.Order,
		Relations: rels,
		Lifts:     lifts,
	})
	if err != nil {
		return nil, err
	}
	ridgeCfg := cfg.Ridge
	if ridgeCfg == (ml.RidgeConfig{}) {
		ridgeCfg = ml.DefaultRidgeConfig()
	}
	idx := make(map[string]int, len(cfg.Features))
	for i, f := range cfg.Features {
		idx[f.Attr] = i
	}
	a := &Analysis{
		ring:      rg,
		feats:     feats,
		specs:     append([]FeatureSpec(nil), cfg.Features...),
		label:     cfg.Label,
		ridgeCfg:  ridgeCfg,
		binWidths: binWidths,
	}
	a.Engine = NewEngine(KindAnalysis, tree, EngineOptions[*ring.RelCovar]{
		Codec: ring.RelCovarCodec{Ring: rg},
		Clone: (*ring.RelCovar).Clone,
		M3: m3.RingInfo{
			Name: fmt.Sprintf("RingCofactor<double, %d>", m),
			LiftIndexOf: func(v string) int {
				if i, ok := idx[v]; ok {
					return i
				}
				return -1
			},
		},
		Publish: a.publishModel,
	})
	return a, nil
}

// publishModel builds the immutable AnalysisModel: a deep payload clone
// plus — when a label is configured — a ridge refit warm-started from
// the previously published optimum.
func (a *Analysis) publishModel(prev Model) Model {
	// Features and BinWidths are copied too, upholding the model's
	// every-field-is-a-deep-copy contract — sharing the engine's own
	// slice/map would turn any future mutation of them into a data race
	// visible in every live snapshot.
	binWidths := make(map[string]float64, len(a.binWidths))
	for k, v := range a.binWidths {
		binWidths[k] = v
	}
	m := &AnalysisModel{
		Label:     a.label,
		Payload:   a.ClonePayload(),
		Features:  append([]ml.Feature(nil), a.feats...),
		BinWidths: binWidths,
	}
	if a.label == "" {
		return m
	}
	var warm *ml.RidgeModel
	if p, ok := prev.(*AnalysisModel); ok && p != nil && p.Model != nil {
		// Warm-start from the previously published optimum, on a clone
		// so the published model is never mutated.
		warm = p.Model.Clone()
	}
	model, sigma, err := RidgeFromPayload(m.Payload, m.Features, a.label, warm, a.ridgeCfg)
	if err != nil {
		m.FitErr = err.Error()
	} else {
		m.Model, m.Sigma = model, sigma
	}
	return m
}

// Label returns the configured serving label ("" when ridge fitting in
// published models is disabled).
func (a *Analysis) Label() string { return a.label }

// Features returns the payload indexing metadata.
func (a *Analysis) Features() []ml.Feature { return a.feats }

// FeatureSpecs returns a copy of the configured feature specs —
// unlike Features it preserves BinWidth, which callers interpreting
// binned one-hot categories (keyed by bin index, not raw value) need.
func (a *Analysis) FeatureSpecs() []FeatureSpec {
	return append([]FeatureSpec(nil), a.specs...)
}

// Covar converts the payload to a dense one-hot-expanded SigmaMatrix
// for the regression solver.
func (a *Analysis) Covar() (*ml.SigmaMatrix, error) {
	return ml.SigmaFromRelCovar(a.Payload(), a.feats)
}

// MI computes the pairwise mutual-information matrix; every feature
// must be categorical or binned.
func (a *Analysis) MI() (*ml.MIMatrix, error) {
	return ml.MIFromRelCovar(a.Payload(), a.feats)
}

// SelectFeatures ranks features by MI with the label and applies the
// threshold — the Model Selection tab.
func (a *Analysis) SelectFeatures(label string, threshold float64) ([]ml.RankedAttr, []string, error) {
	mi, err := a.MI()
	if err != nil {
		return nil, nil, err
	}
	return ml.SelectFeatures(mi, label, threshold)
}

// ChowLiu builds the Chow-Liu tree rooted at root — the Chow-Liu Tree
// tab.
func (a *Analysis) ChowLiu(root string) (*ml.ChowLiuTree, error) {
	mi, err := a.MI()
	if err != nil {
		return nil, err
	}
	return ml.ChowLiu(mi, root)
}

// Ridge fits (or re-converges, when model is non-nil) a ridge linear
// regression predicting label from the other features — the Regression
// tab. It returns the model and the sigma matrix it was fit against.
func (a *Analysis) Ridge(label string, model *ml.RidgeModel, cfg ml.RidgeConfig) (*ml.RidgeModel, *ml.SigmaMatrix, error) {
	return RidgeFromPayload(a.Payload(), a.feats, label, model, cfg)
}

// RidgeFromPayload fits (or re-converges, when model is non-nil) a
// ridge regression against any COVAR payload — Analysis.Ridge uses the
// live payload; the serving layer uses immutable snapshot clones. The
// passed model is mutated in place when its dimensions still match.
func RidgeFromPayload(payload *ring.RelCovar, feats []ml.Feature, label string, model *ml.RidgeModel, cfg ml.RidgeConfig) (*ml.RidgeModel, *ml.SigmaMatrix, error) {
	sigma, err := ml.SigmaFromRelCovar(payload, feats)
	if err != nil {
		return nil, nil, err
	}
	cols := sigma.ColumnsOf(label)
	if len(cols) != 1 {
		return nil, nil, fmt.Errorf("fivm: label %s must be a single continuous column (got %d columns)", label, len(cols))
	}
	if model == nil || len(model.Weights) != sigma.Dim() {
		// Category set drifted (columns appeared/disappeared): restart.
		// A production system would remap surviving columns; restarting
		// preserves correctness and matches the demo behaviour.
		model = ml.NewRidge(sigma, cols[0])
	}
	model.LabelCol = cols[0]
	if err := model.Fit(sigma, cfg); err != nil {
		return nil, nil, err
	}
	return model, sigma, nil
}

// NewCatalog re-exports query catalog construction for the SQL surface.
func NewCatalog() *query.Catalog { return query.NewCatalog() }

// Parse re-exports the SQL-subset parser.
func Parse(c *query.Catalog, src string) (*query.Query, error) { return query.Parse(c, src) }
